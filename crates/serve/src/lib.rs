//! # twigserve — a concurrent shared-index query service
//!
//! Every engine in this workspace answers one query over one document.
//! This crate is the serving layer above them: a [`QueryService`] owns
//! an immutable [`Snapshot`] (document + index + path summary) and
//! evaluates many GTP queries against it concurrently, the way a
//! twig-join engine would sit inside an XML database. Four mechanisms,
//! per DESIGN.md §12:
//!
//! * **plan cache** — parsing is cheap but the summary-feasibility
//!   analysis behind the pruned streams is per-(query, index) work worth
//!   amortizing. Plans are cached behind the query's *canonical* form
//!   ([`gtpquery::serialize()`]), in a sharded LRU ([`cache`]), with
//!   hit/miss/eviction counters surfaced through [`ServiceStats`] and
//!   [`twigobs`];
//! * **session pool** — [`EvalContext`] arenas (hierarchical stacks,
//!   edge scratch) are pooled and recycled across requests, so steady
//!   state evaluation stops touching the allocator;
//! * **admission control** — a bounded gate admits at most
//!   `max_concurrency` evaluations with `max_waiting` queued behind
//!   them; beyond that the overload policy sheds load with a typed
//!   [`ServeError::Overloaded`] *before* doing any work. Admitted
//!   queries run under a per-query deadline ([`CancelToken`]) polled at
//!   stream-advance granularity, and every failure — I/O, deadline,
//!   cancellation, even a panic in the engine — comes back as a
//!   [`ServeError`] value, never a crashed worker;
//! * **batch API** — [`QueryService::execute_batch`] groups admitted
//!   queries that scan the same label set and feeds them from **one**
//!   merged stream scan ([`twig2stack::try_match_indexed_group`]),
//!   falling back to per-query evaluation when a shared scan fails so
//!   each query still reports its own typed error;
//! * **planner** — a cost-based [`planner`] picks engine (Twig²Stack /
//!   TwigStack / PathStack / TJFast), [`PruningPolicy`], and
//!   early-vs-full enumeration per cached plan from path-summary
//!   statistics ([`gtpquery::cost`], DESIGN.md §14), recording its
//!   predictions next to the actual counters so mispredictions are
//!   visible. Off by default: [`PlannerMode`] defaults to
//!   `Forced(Twig2Stack)`, the exact pre-planner behaviour.
//!
//! A fifth mechanism (DESIGN.md §15) makes the served document mutable
//! without ever making a snapshot mutable: [`QueryService::apply_edit`]
//! takes an [`xmldom::EditOp`], derives the post-edit document and index
//! (incrementally patched when the edit fits existing region gaps, fully
//! rebuilt otherwise), and **rotates** the result in as a new
//! [`Snapshot`] behind an [`Arc`] swap. In-flight queries keep reading
//! the snapshot they were admitted under — rotation never blocks or
//! tears a reader — and cached plans are invalidated precisely: a plan
//! survives an edit iff the index was patched (summary-id numbering
//! preserved) and the plan's scanned label set is disjoint from the
//! edit's changed labels.
//!
//! Engine caveats under a non-default [`PlannerMode`]: the baseline
//! engines are not cancellable mid-scan (the [`CancelToken`] is checked
//! once before they run), and their result rows are canonicalized into
//! document order ([`ResultSet::sorted`]) so every engine returns
//! byte-identical rows for the same full-twig query — asserted per query
//! by the Fig A experiment and the `adaptive_vs_forced` fuzz invariant.
//!
//! ```
//! use twigserve::{QueryService, ServiceConfig};
//!
//! let doc = xmldom::parse("<a><b><c/></b><b/></a>").unwrap();
//! let svc = QueryService::build(doc, ServiceConfig::default());
//! let rs = svc.execute("//a/b[c]").unwrap();
//! assert_eq!(rs.len(), 1);
//! svc.execute("//a/b[c]").unwrap(); // second run hits the plan cache
//! let stats = svc.stats();
//! assert_eq!(stats.plan_cache_hits, 1);
//! assert_eq!(stats.analyses_run, 1);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod catalog;
pub mod planner;
pub mod subscribe;

pub use cache::CachedPlan;
pub use catalog::{CatalogConfig, CatalogDoc, CatalogService, CatalogStats, DocHit, LabelBloom};
pub use gtpquery::cost::PlanEngine;
pub use planner::{PlanDecision, PlannerMode};
pub use subscribe::{SubNotification, SubscriptionId, SubscriptionService};

use cache::PlanCache;
use gtpquery::{
    parse_twig, serialize, CancelToken, Cell, Gtp, QueryError, QueryParseError, ResultSet,
};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Condvar, Mutex, OnceLock, RwLock};
use std::time::Duration;
use twig2stack::{
    enumerate, evaluate_early, try_match_indexed, try_match_indexed_group, EvalContext,
    IndexedPlan, MatchOptions,
};
use twigbaselines::{
    path_stack_indexed, tj_fast_indexed, twig_stack_indexed, DeweyResolver, PathStackStats,
    TJFastStats, TwigStackStats,
};
use xmldom::{apply_op, Document, EditDelta, EditError, EditOp, Label};
use xmlindex::{
    DeweyIndex, EditApply, ElementIndex, IndexView, IndexedElement, MappedIndex, MappedOpenError,
    PruningPolicy, SummaryRef,
};

/// Tuning knobs for a [`QueryService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Evaluations allowed to run at once (≥ 1; the bounded worker pool).
    pub max_concurrency: usize,
    /// Admissions allowed to queue behind the running set before the
    /// overload policy sheds load with [`ServeError::Overloaded`].
    pub max_waiting: usize,
    /// Total cached plans across all shards; 0 disables the plan cache
    /// (every request re-runs the feasibility analysis — the Fig T
    /// "cache off" arm).
    pub plan_cache_capacity: usize,
    /// Independently locked cache shards (contention bound).
    pub plan_cache_shards: usize,
    /// Deadline applied to queries submitted without an explicit token;
    /// `None` means no implicit deadline.
    pub default_deadline: Option<Duration>,
    /// Whether plans use path-summary pruning (on for production; off
    /// only for A/B measurement). Under [`PlannerMode::Adaptive`] this is
    /// only the fallback: the planner picks pruning per query.
    pub pruning: PruningPolicy,
    /// How queries are planned: `Forced(engine)` (the default pins
    /// Twig²Stack — the exact pre-planner behaviour) or `Adaptive`
    /// cost-based selection (see [`planner`]).
    pub planner: PlannerMode,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_concurrency: 4,
            max_waiting: 16,
            plan_cache_capacity: 128,
            plan_cache_shards: 8,
            default_deadline: None,
            pruning: PruningPolicy::Enabled,
            planner: PlannerMode::default(),
        }
    }
}

/// A typed request failure. The service never panics at its boundary:
/// every failure mode — bad query text, shed load, evaluation errors,
/// even an engine panic — is a value.
#[derive(Debug)]
pub enum ServeError {
    /// The query text did not parse.
    Parse(QueryParseError),
    /// The overload policy shed this request before any work ran: the
    /// running set and the wait queue were both full.
    Overloaded {
        /// Evaluations running when the request was shed.
        running: usize,
        /// Admissions already queued when the request was shed.
        waiting: usize,
    },
    /// Evaluation failed (stream I/O, deadline, cancellation).
    Query(QueryError),
    /// The engine panicked; the panic was contained to this request and
    /// its message captured.
    Panicked(String),
    /// A document edit was rejected before anything changed: the current
    /// snapshot is untouched and keeps serving.
    Edit(EditError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Parse(e) => write!(f, "query parse error: {e}"),
            ServeError::Overloaded { running, waiting } => write!(
                f,
                "service overloaded ({running} running, {waiting} waiting); request shed"
            ),
            ServeError::Query(e) => write!(f, "{e}"),
            ServeError::Panicked(msg) => write!(f, "evaluation panicked: {msg}"),
            ServeError::Edit(e) => write!(f, "edit rejected: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Parse(e) => Some(e),
            ServeError::Query(e) => Some(e),
            ServeError::Edit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryParseError> for ServeError {
    fn from(e: QueryParseError) -> Self {
        ServeError::Parse(e)
    }
}

impl From<QueryError> for ServeError {
    fn from(e: QueryError) -> Self {
        ServeError::Query(e)
    }
}

impl From<EditError> for ServeError {
    fn from(e: EditError) -> Self {
        ServeError::Edit(e)
    }
}

/// A point-in-time snapshot of the service's own counters. These are
/// always live (plain atomics), independent of whether the [`twigobs`]
/// recording feature is compiled in — the service mirrors each value
/// into the matching `twigobs` counter as well.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Plan lookups served from the cache (analysis skipped).
    pub plan_cache_hits: u64,
    /// Plan lookups that had to run the feasibility analysis.
    pub plan_cache_misses: u64,
    /// Cached plans evicted by the LRU policy.
    pub plan_cache_evictions: u64,
    /// Queries admitted past the concurrency gate.
    pub queries_admitted: u64,
    /// Queries shed by the overload policy.
    pub queries_rejected: u64,
    /// Admitted queries aborted by an expired deadline.
    pub deadline_exceeded: u64,
    /// Admitted queries aborted by explicit cancellation.
    pub cancelled: u64,
    /// Feasibility analyses actually run (== misses; the quantity Fig T
    /// shows the cache amortizing).
    pub analyses_run: u64,
    /// Requests that drew a pooled [`EvalContext`] instead of
    /// allocating a fresh one.
    pub contexts_reused: u64,
    /// Plans decided by the cost model (a subset of `analyses_run`;
    /// zero under a forced planner).
    pub plans_adaptive: u64,
    /// Adaptive executions whose actual stream scan fell outside the
    /// prediction tolerance ([`planner::scan_within_tolerance`]).
    pub plan_mispredictions: u64,
    /// Cached plans replaced by the feedback loop after repeated
    /// mispredictions ([`planner::replan`]; DESIGN.md §14).
    pub plans_replanned: u64,
    /// Document edits applied through [`QueryService::apply_edit`]
    /// (rejected edits do not count).
    pub edits_applied: u64,
    /// Snapshot rotations completed (== `edits_applied`: every applied
    /// edit publishes exactly one new snapshot).
    pub snapshot_rotations: u64,
    /// Cached plans invalidated by snapshot rotations (the complement of
    /// the plans whose analysis survived an edit).
    pub plan_cache_invalidations: u64,
}

#[derive(Debug, Default)]
struct StatsCell {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    deadline: AtomicU64,
    cancelled: AtomicU64,
    analyses: AtomicU64,
    ctx_reused: AtomicU64,
    adaptive: AtomicU64,
    mispredict: AtomicU64,
    replans: AtomicU64,
    edits: AtomicU64,
    rotations: AtomicU64,
    invalidations: AtomicU64,
}

#[derive(Debug, Default)]
struct GateState {
    running: usize,
    waiting: usize,
}

/// The admission gate: a bounded running set with a bounded wait queue.
#[derive(Debug)]
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
    max_running: usize,
    max_waiting: usize,
}

/// An admitted request's slot; releases (and wakes a waiter) on drop, so
/// a panicking evaluation still frees its slot.
#[derive(Debug)]
struct Permit<'a> {
    gate: &'a Gate,
}

impl Gate {
    fn new(max_running: usize, max_waiting: usize) -> Self {
        Gate {
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
            max_running: max_running.max(1),
            max_waiting,
        }
    }

    fn admit(&self) -> Result<Permit<'_>, ServeError> {
        let mut st = self.state.lock().expect("gate poisoned");
        if st.running < self.max_running {
            st.running += 1;
            return Ok(Permit { gate: self });
        }
        if st.waiting >= self.max_waiting {
            return Err(ServeError::Overloaded {
                running: st.running,
                waiting: st.waiting,
            });
        }
        st.waiting += 1;
        while st.running >= self.max_running {
            st = self.cv.wait(st).expect("gate poisoned");
        }
        st.waiting -= 1;
        st.running += 1;
        Ok(Permit { gate: self })
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.gate.state.lock().expect("gate poisoned");
        st.running -= 1;
        drop(st);
        self.gate.cv.notify_one();
    }
}

/// The index backend behind a [`Snapshot`]: heap-built arrays or a
/// zero-copy mapped v3 file — same plans, same results, byte for byte.
///
/// The two arms converge on the first applied edit: a mapped file is
/// read-only, so editing a mapped service materializes the post-edit
/// index on the heap and every later snapshot is `Heap`.
pub enum ServeIndex {
    /// In-memory [`ElementIndex`].
    Heap(ElementIndex),
    /// Mapped v3 file ([`MappedIndex`]), served from the page cache.
    Mapped(MappedIndex),
}

impl ServeIndex {
    /// The mapped backend, if this snapshot still serves from a file.
    pub fn as_mapped(&self) -> Option<&MappedIndex> {
        match self {
            ServeIndex::Mapped(m) => Some(m),
            ServeIndex::Heap(_) => None,
        }
    }
}

impl IndexView for ServeIndex {
    fn elements(&self, label: Label) -> &[IndexedElement] {
        match self {
            ServeIndex::Heap(i) => i.elements(label),
            ServeIndex::Mapped(i) => i.elements(label),
        }
    }
    fn sids(&self, label: Label) -> &[u32] {
        match self {
            ServeIndex::Heap(i) => i.sids(label),
            ServeIndex::Mapped(i) => i.sids(label),
        }
    }
    fn blocks(&self, label: Label) -> &[u32] {
        match self {
            ServeIndex::Heap(i) => i.blocks(label),
            ServeIndex::Mapped(i) => i.blocks(label),
        }
    }
    fn summary(&self) -> SummaryRef<'_> {
        match self {
            ServeIndex::Heap(i) => i.summary(),
            ServeIndex::Mapped(i) => IndexView::summary(i),
        }
    }
    fn label_count(&self) -> usize {
        match self {
            ServeIndex::Heap(i) => IndexView::label_count(i),
            ServeIndex::Mapped(i) => IndexView::label_count(i),
        }
    }
    fn snapshot_version(&self) -> u64 {
        match self {
            ServeIndex::Heap(i) => i.version(),
            ServeIndex::Mapped(_) => 0,
        }
    }
}

/// One immutable generation of the served document: the document, its
/// index, and the lazily built TJFast Dewey machinery, all frozen at a
/// version. Queries evaluate against the snapshot they were admitted
/// under; edits never mutate a snapshot, they publish the next one.
pub struct Snapshot {
    doc: Document,
    index: ServeIndex,
    version: u64,
    /// TJFast's Dewey machinery, built lazily on the first plan that
    /// selects that engine (most snapshots never pay for it).
    dewey: OnceLock<(DeweyIndex, DeweyResolver)>,
}

impl Snapshot {
    /// The served document at this version.
    pub fn doc(&self) -> &Document {
        &self.doc
    }

    /// The index backend at this version.
    pub fn index(&self) -> &ServeIndex {
        &self.index
    }

    /// Service-level snapshot version: 0 at construction, +1 per applied
    /// edit. Cached plans are valid only for the version they were
    /// computed against.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// What one applied edit did, returned by [`QueryService::apply_edit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditReceipt {
    /// Version of the snapshot the edit published.
    pub version: u64,
    /// The document-layer delta: splice coordinates, changed labels,
    /// whether the whole document was renumbered.
    pub delta: EditDelta,
    /// True when the index was rebuilt from scratch instead of patched
    /// (renumbering, a new path, an emptied path, or a mapped backend).
    pub rebuilt: bool,
    /// Cached plans this rotation invalidated.
    pub invalidated_plans: u64,
}

/// What one applied edit **batch** did, returned by
/// [`QueryService::apply_edits`]: N ops, one snapshot rotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchEditReceipt {
    /// Version of the snapshot the batch published (unchanged when the
    /// batch was empty).
    pub version: u64,
    /// Edit ops the batch applied.
    pub ops_applied: usize,
    /// True when any step rebuilt the index from scratch (the whole
    /// plan cache was flushed in that case).
    pub rebuilt: bool,
    /// Cached plans the batch's single rotation invalidated.
    pub invalidated_plans: u64,
    /// One document-layer delta per applied op, in application order —
    /// delta `i` maps node ids of intermediate state `i` to state
    /// `i + 1`, so composing all of them carries a pre-batch id into the
    /// published snapshot (the subscription layer relies on this).
    pub deltas: Vec<EditDelta>,
}

/// A concurrent query service over an edit-rotated sequence of immutable
/// snapshots.
///
/// The service is `Sync`: share it by reference across scoped threads
/// (or wrap it in an [`Arc`]) and call
/// [`execute`](QueryService::execute) from as many threads as you like —
/// the gate bounds actual concurrency, the plan cache and context pool
/// are internally synchronized, and results are byte-identical to
/// serial, uncached evaluation (pinned by `tests/serve_differential.rs`).
/// [`apply_edit`](QueryService::apply_edit) may run concurrently with
/// readers: each request pins one [`Snapshot`] for its whole evaluation,
/// so a rotation mid-request is invisible to it (pinned by
/// `tests/serve_rotation.rs`).
pub struct QueryService {
    snapshot: RwLock<Arc<Snapshot>>,
    /// Serializes writers; readers never take it. Held across the whole
    /// derive-and-rotate sequence so concurrent edits see each other.
    edit_lock: Mutex<()>,
    config: ServiceConfig,
    cache: PlanCache,
    contexts: Mutex<Vec<EvalContext>>,
    gate: Gate,
    stats: StatsCell,
}

impl QueryService {
    /// Build the element index for `doc` and wrap it.
    pub fn build(doc: Document, config: ServiceConfig) -> Self {
        let index = ElementIndex::build(&doc);
        QueryService::new(doc, index, config)
    }

    /// Serve `doc` from the mapped v3 index at `path`: boot is `mmap` +
    /// checksum verification instead of an index build, and queries read
    /// postings straight out of the page cache. The file must describe
    /// the same document (`write_mapped_index` from the same parse).
    pub fn open_mapped(
        doc: Document,
        path: &Path,
        config: ServiceConfig,
    ) -> Result<Self, MappedOpenError> {
        let index = MappedIndex::open(path)?;
        Ok(QueryService::with_backend(
            doc,
            ServeIndex::Mapped(index),
            config,
        ))
    }

    /// Wrap an already-built index. `index` must have been built from
    /// `doc` (the constructor does not verify the pairing).
    pub fn new(doc: Document, index: ElementIndex, config: ServiceConfig) -> Self {
        QueryService::with_backend(doc, ServeIndex::Heap(index), config)
    }

    fn with_backend(doc: Document, index: ServeIndex, config: ServiceConfig) -> Self {
        let gate = Gate::new(config.max_concurrency, config.max_waiting);
        let cache = PlanCache::new(config.plan_cache_capacity, config.plan_cache_shards);
        let snapshot = Arc::new(Snapshot {
            doc,
            index,
            version: 0,
            dewey: OnceLock::new(),
        });
        QueryService {
            snapshot: RwLock::new(snapshot),
            edit_lock: Mutex::new(()),
            config,
            cache,
            contexts: Mutex::new(Vec::new()),
            gate,
            stats: StatsCell::default(),
        }
    }

    /// Pin the current snapshot. The `Arc` keeps the whole generation
    /// (document, index, Dewey) alive for as long as the caller holds it,
    /// no matter how many rotations happen meanwhile.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot.read().expect("snapshot lock poisoned"))
    }

    /// Apply one subtree edit and rotate the resulting snapshot in.
    ///
    /// The new document and index are derived outside the snapshot lock
    /// (readers are never blocked by the derivation, only by the final
    /// pointer swap), then cached plans are invalidated: all of them if
    /// the index was rebuilt (summary-id numbering may have moved —
    /// always the case for a mapped backend, which is materialized to a
    /// heap index by its first edit), otherwise exactly the plans whose
    /// scanned labels intersect the edit's changed labels. Concurrent
    /// edits serialize; a rejected edit changes nothing.
    pub fn apply_edit(&self, op: &EditOp) -> Result<EditReceipt, ServeError> {
        let _writer = self.edit_lock.lock().expect("edit lock poisoned");
        let old = self.snapshot();
        let (doc, delta) = apply_op(&old.doc, op)?;
        let (index, how) = match &old.index {
            ServeIndex::Heap(ix) => {
                let (ix, how) = ix.apply_edit(&doc, &delta);
                (ServeIndex::Heap(ix), how)
            }
            // v3 files are read-only; materialize the post-edit index on
            // the heap. A rebuild, so every cached plan is stale.
            ServeIndex::Mapped(_) => {
                twigobs::add(twigobs::Counter::EditElementsReindexed, doc.len() as u64);
                (
                    ServeIndex::Heap(ElementIndex::build(&doc)),
                    EditApply::Rebuilt,
                )
            }
        };
        let version = old.version + 1;
        let next = Arc::new(Snapshot {
            doc,
            index,
            version,
            dewey: OnceLock::new(),
        });
        *self.snapshot.write().expect("snapshot lock poisoned") = next;
        let rebuilt = how == EditApply::Rebuilt;
        let changed = (!rebuilt).then_some(delta.changed_labels.as_slice());
        let invalidated = self.cache.rotate(changed, version);
        self.stats.edits.fetch_add(1, Ordering::Relaxed);
        self.stats.rotations.fetch_add(1, Ordering::Relaxed);
        self.stats
            .invalidations
            .fetch_add(invalidated, Ordering::Relaxed);
        twigobs::bump(twigobs::Counter::SnapshotRotations);
        twigobs::add(twigobs::Counter::PlanCacheInvalidations, invalidated);
        Ok(EditReceipt {
            version,
            delta,
            rebuilt,
            invalidated_plans: invalidated,
        })
    }

    /// Apply a batch of subtree edits as **one** snapshot rotation
    /// (ROADMAP item 1a).
    ///
    /// Each op is expressed against the document produced by the ops
    /// before it — exactly the coordinates N sequential
    /// [`apply_edit`](Self::apply_edit) calls would use — and the final
    /// document and index are identical to that sequence's. What differs
    /// is the publication: readers see either the pre-batch snapshot or
    /// the fully edited one (never an intermediate), the plan cache pays
    /// one rotation whose changed-label set is the union over all ops
    /// (one full flush if any step rebuilt), and `snapshot_rotations`
    /// advances by exactly 1.
    ///
    /// All-or-nothing: a rejected op aborts the whole batch before
    /// anything is published. An empty batch is a no-op (no rotation).
    pub fn apply_edits(&self, ops: &[EditOp]) -> Result<BatchEditReceipt, ServeError> {
        let _writer = self.edit_lock.lock().expect("edit lock poisoned");
        let old = self.snapshot();
        if ops.is_empty() {
            return Ok(BatchEditReceipt {
                version: old.version,
                ops_applied: 0,
                rebuilt: false,
                invalidated_plans: 0,
                deltas: Vec::new(),
            });
        }
        let mut doc_cur: Option<Document> = None;
        let mut ix_cur: Option<ElementIndex> = None;
        let mut rebuilt = false;
        let mut changed: Vec<Label> = Vec::new();
        let mut deltas: Vec<EditDelta> = Vec::with_capacity(ops.len());
        for op in ops {
            let (next_doc, delta) = apply_op(doc_cur.as_ref().unwrap_or(&old.doc), op)?;
            let (next_ix, how) = match (&ix_cur, &old.index) {
                (Some(ix), _) => ix.apply_edit(&next_doc, &delta),
                (None, ServeIndex::Heap(ix)) => ix.apply_edit(&next_doc, &delta),
                // v3 files are read-only; the first op materializes the
                // post-edit index on the heap (see apply_edit).
                (None, ServeIndex::Mapped(_)) => {
                    twigobs::add(
                        twigobs::Counter::EditElementsReindexed,
                        next_doc.len() as u64,
                    );
                    (ElementIndex::build(&next_doc), EditApply::Rebuilt)
                }
            };
            rebuilt |= how == EditApply::Rebuilt;
            for &l in &delta.changed_labels {
                if !changed.contains(&l) {
                    changed.push(l);
                }
            }
            doc_cur = Some(next_doc);
            ix_cur = Some(next_ix);
            deltas.push(delta);
        }
        let version = old.version + 1;
        let next = Arc::new(Snapshot {
            doc: doc_cur.expect("non-empty batch"),
            index: ServeIndex::Heap(ix_cur.expect("non-empty batch")),
            version,
            dewey: OnceLock::new(),
        });
        *self.snapshot.write().expect("snapshot lock poisoned") = next;
        let invalidated = self
            .cache
            .rotate((!rebuilt).then_some(changed.as_slice()), version);
        self.stats
            .edits
            .fetch_add(ops.len() as u64, Ordering::Relaxed);
        self.stats.rotations.fetch_add(1, Ordering::Relaxed);
        self.stats
            .invalidations
            .fetch_add(invalidated, Ordering::Relaxed);
        twigobs::bump(twigobs::Counter::SnapshotRotations);
        twigobs::add(twigobs::Counter::PlanCacheInvalidations, invalidated);
        Ok(BatchEditReceipt {
            version,
            ops_applied: ops.len(),
            rebuilt,
            invalidated_plans: invalidated,
            deltas,
        })
    }

    /// Snapshot the service counters.
    pub fn stats(&self) -> ServiceStats {
        let s = &self.stats;
        ServiceStats {
            plan_cache_hits: s.hits.load(Ordering::Relaxed),
            plan_cache_misses: s.misses.load(Ordering::Relaxed),
            plan_cache_evictions: s.evictions.load(Ordering::Relaxed),
            queries_admitted: s.admitted.load(Ordering::Relaxed),
            queries_rejected: s.rejected.load(Ordering::Relaxed),
            deadline_exceeded: s.deadline.load(Ordering::Relaxed),
            cancelled: s.cancelled.load(Ordering::Relaxed),
            analyses_run: s.analyses.load(Ordering::Relaxed),
            contexts_reused: s.ctx_reused.load(Ordering::Relaxed),
            plans_adaptive: s.adaptive.load(Ordering::Relaxed),
            plan_mispredictions: s.mispredict.load(Ordering::Relaxed),
            plans_replanned: s.replans.load(Ordering::Relaxed),
            edits_applied: s.edits.load(Ordering::Relaxed),
            snapshot_rotations: s.rotations.load(Ordering::Relaxed),
            plan_cache_invalidations: s.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Plan `query` (through the cache, without admission or
    /// evaluation) and return the planner's decision for it — the
    /// introspection hook the pinned planner tests and Fig A use.
    pub fn planned(&self, query: &str) -> Result<PlanDecision, ServeError> {
        Ok(self.lookup_plan(&self.snapshot(), query)?.decision)
    }

    /// Evaluate one query under the config's default deadline (if any).
    pub fn execute(&self, query: &str) -> Result<ResultSet, ServeError> {
        self.execute_with(query, self.default_cancel())
    }

    /// Evaluate one query under an explicit cancellation token. The
    /// token is polled at stream-advance granularity, so cancellation
    /// and deadlines take effect mid-scan, not just between requests.
    /// The snapshot is pinned at admission: a concurrent edit never
    /// tears this evaluation across generations.
    pub fn execute_with(&self, query: &str, cancel: CancelToken) -> Result<ResultSet, ServeError> {
        let _span = twigobs::span(twigobs::Phase::Serve);
        let permit = self.admit(1)?;
        let snap = self.snapshot();
        let plan = self.lookup_plan(&snap, query)?;
        let out = self.eval_single(&snap, &plan, &cancel);
        drop(permit);
        out
    }

    /// Evaluate a batch, sharing one merged stream scan among admitted
    /// queries whose plans read the same label set. Returns one result
    /// per input query, in input order; each query fails independently
    /// (a shared-scan failure falls back to per-query evaluation so
    /// every member reports its own typed error). The whole batch runs
    /// against one pinned snapshot.
    pub fn execute_batch(&self, queries: &[&str]) -> Vec<Result<ResultSet, ServeError>> {
        let _span = twigobs::span(twigobs::Phase::Serve);
        let snap = self.snapshot();
        let mut out: Vec<Option<Result<ResultSet, ServeError>>> =
            (0..queries.len()).map(|_| None).collect();
        let mut prepared: Vec<(usize, Arc<CachedPlan>)> = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            match self.lookup_plan(&snap, q) {
                Ok(p) => prepared.push((i, p)),
                Err(e) => out[i] = Some(Err(e)),
            }
        }
        // Group by scanned label set: equal sets share one merged scan.
        // Only full-enumeration Twig²Stack plans can join a shared scan;
        // anything the planner routed elsewhere evaluates on its own.
        type Group = (Vec<Label>, Vec<(usize, Arc<CachedPlan>)>);
        let mut groups: Vec<Group> = Vec::new();
        let mut singles: Vec<Group> = Vec::new();
        for (i, p) in prepared {
            let groupable = p.decision.engine == PlanEngine::Twig2Stack && !p.decision.early;
            if !groupable {
                singles.push((Vec::new(), vec![(i, p)]));
                continue;
            }
            let key = p.plan.labels();
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push((i, p)),
                None => groups.push((key, vec![(i, p)])),
            }
        }
        for (_, members) in groups.into_iter().chain(singles) {
            let cancel = self.default_cancel();
            let permit = match self.admit(members.len() as u64) {
                Ok(p) => p,
                Err(ServeError::Overloaded { running, waiting }) => {
                    for (i, _) in &members {
                        out[*i] = Some(Err(ServeError::Overloaded { running, waiting }));
                    }
                    continue;
                }
                Err(e) => {
                    // admit only fails with Overloaded; keep the typed
                    // error for the first member if that ever changes.
                    let (first, rest) = members.split_first().expect("non-empty group");
                    out[first.0] = Some(Err(e));
                    for (i, _) in rest {
                        out[*i] = Some(Err(ServeError::Overloaded {
                            running: 0,
                            waiting: 0,
                        }));
                    }
                    continue;
                }
            };
            match members.as_slice() {
                [(i, plan)] => out[*i] = Some(self.eval_single(&snap, plan, &cancel)),
                _ => {
                    match self.eval_group(&snap, &members, &cancel) {
                        Some(results) => {
                            for ((i, _), rs) in members.iter().zip(results) {
                                out[*i] = Some(Ok(rs));
                            }
                        }
                        None => {
                            // Shared scan failed (deadline, cancellation,
                            // panic): evaluate members individually so
                            // each reports its own typed error — and any
                            // member unaffected by a per-query fault
                            // still succeeds.
                            for (i, plan) in &members {
                                out[*i] = Some(self.eval_single(&snap, plan, &cancel));
                            }
                        }
                    }
                }
            }
            drop(permit);
        }
        out.into_iter()
            .map(|o| o.expect("every query resolved"))
            .collect()
    }

    fn default_cancel(&self) -> CancelToken {
        match self.config.default_deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::never(),
        }
    }

    /// Admit one unit of evaluation work covering `queries` queries.
    fn admit(&self, queries: u64) -> Result<Permit<'_>, ServeError> {
        match self.gate.admit() {
            Ok(p) => {
                self.stats.admitted.fetch_add(queries, Ordering::Relaxed);
                twigobs::add(twigobs::Counter::QueriesAdmitted, queries);
                Ok(p)
            }
            Err(e) => {
                self.stats.rejected.fetch_add(queries, Ordering::Relaxed);
                twigobs::add(twigobs::Counter::QueriesRejected, queries);
                Err(e)
            }
        }
    }

    /// Parse `query`, canonicalize it, and fetch-or-compute its plan for
    /// `snap`'s generation (a cached plan from another generation is a
    /// miss, never served).
    fn lookup_plan(&self, snap: &Snapshot, query: &str) -> Result<Arc<CachedPlan>, ServeError> {
        let gtp = parse_twig(query)?;
        let key = serialize(&gtp);
        if let Some(hit) = self.cache.get(&key, snap.version) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            twigobs::bump(twigobs::Counter::PlanCacheHits);
            return Ok(hit);
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        twigobs::bump(twigobs::Counter::PlanCacheMisses);
        self.stats.analyses.fetch_add(1, Ordering::Relaxed);
        let decision = planner::decide(
            &gtp,
            snap.index(),
            snap.doc.labels(),
            self.config.planner,
            self.config.pruning,
        );
        if decision.adaptive {
            self.stats.adaptive.fetch_add(1, Ordering::Relaxed);
        }
        let plan = IndexedPlan::compute(&gtp, snap.index(), snap.doc.labels(), decision.policy);
        let cached = Arc::new(CachedPlan::new(gtp, plan, decision));
        let evicted = self.cache.insert(key, Arc::clone(&cached), snap.version);
        if evicted > 0 {
            self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
            twigobs::add(twigobs::Counter::PlanCacheEvictions, evicted);
        }
        Ok(cached)
    }

    fn pop_context(&self) -> EvalContext {
        let pooled = self.contexts.lock().expect("context pool poisoned").pop();
        match pooled {
            Some(ctx) => {
                self.stats.ctx_reused.fetch_add(1, Ordering::Relaxed);
                ctx
            }
            None => EvalContext::new(),
        }
    }

    fn push_context(&self, ctx: EvalContext) {
        let mut pool = self.contexts.lock().expect("context pool poisoned");
        if pool.len() < self.config.max_concurrency {
            pool.push(ctx);
        }
    }

    fn note_query_error(&self, e: &QueryError) {
        match e {
            QueryError::DeadlineExceeded => {
                self.stats.deadline.fetch_add(1, Ordering::Relaxed);
                twigobs::bump(twigobs::Counter::DeadlineExceeded);
            }
            QueryError::Cancelled => {
                self.stats.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    /// Misprediction strikes on one cached plan before the feedback loop
    /// re-plans it with the measured scan (ROADMAP item 4a).
    const REPLAN_AFTER: u32 = 3;

    /// After a successful adaptive execution: mirror the predictions
    /// into the sidecar counters (next to the engines' actual counters)
    /// and flag the execution as mispredicted when the actual stream
    /// scan left the tolerance window. `actual_scan` is `None` for
    /// executions with no stream-scan proxy (early enumeration walks
    /// parse events, not streams) — those record predictions but are
    /// never alarmed.
    ///
    /// The [`Self::REPLAN_AFTER`]th strike on one plan triggers the
    /// feedback loop: [`planner::replan`] re-derives the decision with
    /// the measured scan blended in, and the replacement plan is
    /// published under the same cache key (for `snap`'s generation), so
    /// the next lookup serves the corrected decision.
    fn record_outcome(&self, snap: &Snapshot, plan: &CachedPlan, actual_scan: Option<u64>) {
        let decision = &plan.decision;
        if !decision.adaptive {
            return;
        }
        twigobs::add(twigobs::Counter::PlanPredictedScan, decision.predicted_scan);
        twigobs::add(
            twigobs::Counter::PlanPredictedResults,
            decision.predicted_results,
        );
        if let Some(actual) = actual_scan {
            if !planner::scan_within_tolerance(decision.predicted_scan, actual) {
                self.stats.mispredict.fetch_add(1, Ordering::Relaxed);
                twigobs::bump(twigobs::Counter::PlanMispredictions);
                if plan.note_misprediction() == Self::REPLAN_AFTER {
                    self.replan(snap, plan, actual);
                }
            }
        }
    }

    /// Publish a feedback-corrected replacement for `plan` (same cache
    /// key, `snap`'s generation). Races are benign: a concurrent lookup
    /// either sees the old plan (one more corrected-next-time execution)
    /// or the new one; whichever insert lands last wins, and both carry
    /// decisions valid for this snapshot.
    fn replan(&self, snap: &Snapshot, plan: &CachedPlan, measured_scan: u64) {
        let decision = planner::replan(
            &plan.gtp,
            snap.index(),
            snap.doc.labels(),
            &plan.decision,
            measured_scan,
        );
        let gtp = plan.gtp.clone();
        let revised = IndexedPlan::compute(&gtp, snap.index(), snap.doc.labels(), decision.policy);
        let key = serialize(&gtp);
        let evicted = self.cache.insert(
            key,
            Arc::new(CachedPlan::new(gtp, revised, decision)),
            snap.version,
        );
        if evicted > 0 {
            self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
            twigobs::add(twigobs::Counter::PlanCacheEvictions, evicted);
        }
        self.stats.replans.fetch_add(1, Ordering::Relaxed);
    }

    /// Per-query evaluation, dispatched on the plan's engine decision.
    fn eval_single(
        &self,
        snap: &Snapshot,
        plan: &CachedPlan,
        cancel: &CancelToken,
    ) -> Result<ResultSet, ServeError> {
        match plan.decision.engine {
            PlanEngine::Twig2Stack => self.eval_twig2stack(snap, plan, cancel),
            engine => self.eval_baseline(snap, engine, plan, cancel),
        }
    }

    /// The Twig²Stack path: early enumeration if the decision asked for
    /// it (falling back to the full pipeline when the query shape is
    /// unsupported), else the pooled-context match-then-enumerate
    /// pipeline.
    fn eval_twig2stack(
        &self,
        snap: &Snapshot,
        plan: &CachedPlan,
        cancel: &CancelToken,
    ) -> Result<ResultSet, ServeError> {
        if plan.decision.early {
            if let Err(e) = cancel.check() {
                self.note_query_error(&e);
                return Err(ServeError::Query(e));
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                evaluate_early(&snap.doc, &plan.gtp, MatchOptions::default())
            }));
            match outcome {
                Ok(Ok((rs, _stats))) => {
                    self.record_outcome(snap, plan, None);
                    return Ok(rs);
                }
                // Shape outside the early fragment: run the full
                // pipeline below instead.
                Ok(Err(_unsupported)) => {}
                Err(payload) => return Err(ServeError::Panicked(panic_message(payload))),
            }
        }
        let mut ctx = self.pop_context();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            try_match_indexed(
                &snap.doc,
                snap.index(),
                &plan.gtp,
                MatchOptions::default(),
                &plan.plan,
                Some(&mut ctx),
                cancel,
            )
            .map(|(tm, stats)| (enumerate(&tm), tm, stats.elements_considered as u64))
        }));
        match outcome {
            Ok(Ok((rs, tm, scanned))) => {
                ctx.recycle(tm);
                self.push_context(ctx);
                self.record_outcome(snap, plan, Some(scanned));
                Ok(rs)
            }
            Ok(Err(e)) => {
                // The matcher's arenas died with it, but the context is
                // structurally sound — keep pooling it.
                self.push_context(ctx);
                self.note_query_error(&e);
                Err(ServeError::Query(e))
            }
            // A panicked evaluation may have left `ctx` mid-surgery:
            // drop it instead of pooling.
            Err(payload) => Err(ServeError::Panicked(panic_message(payload))),
        }
    }

    /// A decomposition baseline (TwigStack / PathStack / TJFast). These
    /// engines do not poll the [`CancelToken`] mid-scan, so the token is
    /// checked once up front; results are canonicalized into document
    /// order so every engine agrees byte-for-byte.
    fn eval_baseline(
        &self,
        snap: &Snapshot,
        engine: PlanEngine,
        plan: &CachedPlan,
        cancel: &CancelToken,
    ) -> Result<ResultSet, ServeError> {
        if let Err(e) = cancel.check() {
            self.note_query_error(&e);
            return Err(ServeError::Query(e));
        }
        let policy = plan.decision.policy;
        let outcome = catch_unwind(AssertUnwindSafe(|| match engine {
            PlanEngine::TwigStack => {
                let mut st = TwigStackStats::default();
                let rs =
                    twig_stack_indexed(snap.index(), snap.doc.labels(), &plan.gtp, policy, &mut st);
                (rs.sorted(), st.elements_scanned as u64)
            }
            PlanEngine::PathStack => {
                let mut st = PathStackStats::default();
                let sols =
                    path_stack_indexed(snap.index(), snap.doc.labels(), &plan.gtp, policy, &mut st);
                let mut rs = ResultSet::new(sols.path.clone());
                for row in sols.solutions {
                    rs.push(row.into_iter().map(Cell::Node).collect());
                }
                (rs.sorted(), st.elements_scanned as u64)
            }
            PlanEngine::TJFast => {
                let (dewey, resolver) = snap.dewey.get_or_init(|| {
                    let dewey = DeweyIndex::build(&snap.doc);
                    let resolver = DeweyResolver::build(&dewey, snap.doc.labels());
                    (dewey, resolver)
                });
                let mut st = TJFastStats::default();
                let rs = tj_fast_indexed(
                    &plan.gtp,
                    dewey,
                    snap.index().summary(),
                    snap.doc.labels(),
                    resolver,
                    policy,
                    &mut st,
                );
                (rs.sorted(), st.elements_scanned as u64)
            }
            PlanEngine::Twig2Stack => unreachable!("dispatched by eval_single"),
        }));
        match outcome {
            Ok((rs, scanned)) => {
                self.record_outcome(snap, plan, Some(scanned));
                Ok(rs)
            }
            Err(payload) => Err(ServeError::Panicked(panic_message(payload))),
        }
    }

    /// Shared-scan evaluation of a label-set group. Returns `None` on
    /// any failure — the caller falls back to per-member evaluation for
    /// accurate per-query errors.
    fn eval_group(
        &self,
        snap: &Snapshot,
        members: &[(usize, Arc<CachedPlan>)],
        cancel: &CancelToken,
    ) -> Option<Vec<ResultSet>> {
        let refs: Vec<(&Gtp, &IndexedPlan)> =
            members.iter().map(|(_, p)| (&p.gtp, &p.plan)).collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            try_match_indexed_group(
                &snap.doc,
                snap.index(),
                &refs,
                MatchOptions::default(),
                cancel,
            )
            .map(|v| {
                v.into_iter()
                    .map(|(tm, _)| enumerate(&tm))
                    .collect::<Vec<_>>()
            })
        }));
        match outcome {
            Ok(Ok(results)) => Some(results),
            Ok(Err(_)) | Err(_) => None,
        }
    }

    /// Number of plans currently cached (diagnostics).
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    const DOC: &str =
        "<a><a><b><c/></b></a><b/><b><c/><c/></b><d><b><c/></b></d><b><y>2006</y></b></a>";

    fn service(config: ServiceConfig) -> QueryService {
        QueryService::build(xmldom::parse(DOC).unwrap(), config)
    }

    #[test]
    fn execute_matches_serial_evaluation() {
        let svc = service(ServiceConfig::default());
        for q in ["//a/b[c]", "//a//b", "//b/y", "//a/b[y='2006']"] {
            let gtp = parse_twig(q).unwrap();
            let expected = twig2stack::evaluate(svc.snapshot().doc(), &gtp);
            assert_eq!(svc.execute(q).unwrap(), expected, "{q}");
        }
    }

    #[test]
    fn second_request_hits_the_plan_cache() {
        let svc = service(ServiceConfig::default());
        let a = svc.execute("//a/b[c]").unwrap();
        let b = svc.execute("//a/b[c]").unwrap();
        assert_eq!(a, b);
        let s = svc.stats();
        assert_eq!(s.plan_cache_misses, 1);
        assert_eq!(s.plan_cache_hits, 1);
        assert_eq!(s.analyses_run, 1, "the hit skipped the analysis");
        assert_eq!(s.queries_admitted, 2);
        assert_eq!(
            s.contexts_reused, 1,
            "second request reused the pooled context"
        );
        assert_eq!(svc.cached_plans(), 1);
    }

    #[test]
    fn equivalent_spellings_share_one_plan() {
        let svc = service(ServiceConfig::default());
        // The cache key is the canonical serialization, so the spine
        // spelling and its bracket-only canonical form share one entry.
        let spine = "//a/b[c]";
        let canonical = serialize(&parse_twig(spine).unwrap());
        assert_ne!(spine, canonical, "the two spellings differ as text");
        let a = svc.execute(spine).unwrap();
        let b = svc.execute(&canonical).unwrap();
        assert_eq!(a, b);
        let s = svc.stats();
        assert_eq!(s.plan_cache_misses, 1);
        assert_eq!(s.plan_cache_hits, 1);
        assert_eq!(svc.cached_plans(), 1);
    }

    #[test]
    fn cache_off_reruns_the_analysis() {
        let svc = service(ServiceConfig {
            plan_cache_capacity: 0,
            ..ServiceConfig::default()
        });
        svc.execute("//a/b[c]").unwrap();
        svc.execute("//a/b[c]").unwrap();
        let s = svc.stats();
        assert_eq!(s.plan_cache_hits, 0);
        assert_eq!(s.analyses_run, 2);
        assert_eq!(svc.cached_plans(), 0);
    }

    #[test]
    fn parse_errors_are_typed() {
        let svc = service(ServiceConfig::default());
        let err = svc.execute("//a[").unwrap_err();
        assert!(matches!(err, ServeError::Parse(_)));
        assert!(err.to_string().contains("parse"));
        // A rejected parse consumes an admission slot but never runs.
        assert_eq!(svc.stats().analyses_run, 0);
    }

    #[test]
    fn expired_deadline_surfaces_as_typed_error() {
        let svc = service(ServiceConfig::default());
        let err = svc
            .execute_with("//a/b[c]", CancelToken::with_deadline(Duration::ZERO))
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Query(QueryError::DeadlineExceeded)
        ));
        assert_eq!(svc.stats().deadline_exceeded, 1);
    }

    #[test]
    fn cancellation_surfaces_as_typed_error() {
        let svc = service(ServiceConfig::default());
        let token = CancelToken::new();
        token.cancel();
        let err = svc.execute_with("//a/b[c]", token).unwrap_err();
        assert!(matches!(err, ServeError::Query(QueryError::Cancelled)));
        assert_eq!(svc.stats().cancelled, 1);
    }

    #[test]
    fn overload_policy_sheds_with_typed_rejection() {
        let gate = Gate::new(1, 0);
        let first = gate.admit().expect("first admission fits");
        let err = gate.admit().expect_err("second admission must shed");
        match err {
            ServeError::Overloaded { running, waiting } => {
                assert_eq!(running, 1);
                assert_eq!(waiting, 0);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        drop(first);
        drop(gate.admit().expect("slot freed after release"));
    }

    #[test]
    fn waiters_are_admitted_when_a_slot_frees() {
        let gate = Arc::new(Gate::new(1, 4));
        let permit = gate.admit().unwrap();
        let (tx, rx) = mpsc::channel();
        let g = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || {
            let p = g.admit().expect("waiter is queued, not shed");
            tx.send(()).unwrap();
            drop(p);
        });
        // The waiter is blocked until the slot frees.
        assert!(rx.recv_timeout(Duration::from_millis(50)).is_err());
        drop(permit);
        rx.recv_timeout(Duration::from_secs(5))
            .expect("waiter admitted");
        waiter.join().unwrap();
    }

    #[test]
    fn batch_matches_individual_execution() {
        let svc = service(ServiceConfig::default());
        let queries = ["//a/b[c]", "//a//b", "//b/c", "//a/b[c]", "bogus[", "//d/b"];
        let batch = svc.execute_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (q, r) in queries.iter().zip(&batch) {
            match *q {
                "bogus[" => assert!(matches!(r, Err(ServeError::Parse(_)))),
                q => {
                    let gtp = parse_twig(q).unwrap();
                    let expected = twig2stack::evaluate(svc.snapshot().doc(), &gtp);
                    assert_eq!(*r.as_ref().unwrap(), expected, "{q}");
                }
            }
        }
        // //a/b[c] and //b/c scan {b, c}; the duplicate //a/b[c] joins
        // them, so at least one shared scan formed.
        assert!(svc.stats().queries_admitted >= 5);
    }

    #[test]
    fn forced_engines_agree_with_the_default_service() {
        let default_svc = service(ServiceConfig::default());
        // Full-twig queries every decomposition baseline can run; the
        // service canonicalizes baseline rows into document order, so
        // compare sorted row sets.
        let queries = ["//a/b[c]", "//a//b", "//b/c", "//d//c"];
        for engine in PlanEngine::ALL {
            let svc = service(ServiceConfig {
                planner: PlannerMode::Forced(engine),
                ..ServiceConfig::default()
            });
            for q in queries {
                let expected = default_svc.execute(q).unwrap().sorted();
                let got = svc.execute(q).unwrap().sorted();
                assert_eq!(got, expected, "{engine:?} {q}");
                let d = svc.planned(q).unwrap();
                assert!(!d.adaptive);
                assert_eq!(d.engine, engine, "{engine:?} is applicable to {q}");
            }
            // A GTP-extension query is outside every baseline's fragment:
            // the forced service falls back to Twig²Stack and still answers.
            let gtp_only = "//a/b!/c";
            assert_eq!(
                svc.execute(gtp_only).unwrap().sorted(),
                default_svc.execute(gtp_only).unwrap().sorted(),
                "{engine:?} fallback"
            );
            assert_eq!(
                svc.planned(gtp_only).unwrap().engine,
                PlanEngine::Twig2Stack
            );
        }
    }

    #[test]
    fn adaptive_service_matches_the_default_service() {
        let default_svc = service(ServiceConfig::default());
        let svc = service(ServiceConfig {
            planner: PlannerMode::Adaptive,
            ..ServiceConfig::default()
        });
        for q in ["//a/b[c]", "//a//b", "//b/y", "//a/b[y='2006']", "//a/b!/c"] {
            assert_eq!(
                svc.execute(q).unwrap().sorted(),
                default_svc.execute(q).unwrap().sorted(),
                "{q}"
            );
            let d = svc.planned(q).unwrap();
            assert!(d.adaptive);
        }
        let s = svc.stats();
        assert_eq!(
            s.plans_adaptive, s.analyses_run,
            "every analysis was cost-based"
        );
    }

    #[test]
    fn adaptive_batches_mix_shared_scans_with_singletons() {
        let svc = service(ServiceConfig {
            planner: PlannerMode::Adaptive,
            ..ServiceConfig::default()
        });
        let queries = ["//a/b[c]", "//b/c", "//a/b!/c", "//d//c"];
        let batch = svc.execute_batch(&queries);
        for (q, r) in queries.iter().zip(&batch) {
            let gtp = parse_twig(q).unwrap();
            let expected = twig2stack::evaluate(svc.snapshot().doc(), &gtp).sorted();
            assert_eq!(r.as_ref().unwrap().clone().sorted(), expected, "{q}");
        }
    }

    #[test]
    fn mapped_service_matches_heap_service() {
        let path =
            std::env::temp_dir().join(format!("twigserve-mapped-{}.t2s", std::process::id()));
        xmlindex::write_mapped_index(&xmldom::parse(DOC).unwrap(), &path).unwrap();
        let heap = service(ServiceConfig::default());
        let mapped =
            QueryService::open_mapped(xmldom::parse(DOC).unwrap(), &path, ServiceConfig::default())
                .unwrap();
        for q in ["//a/b[c]", "//a//b", "//b/y", "//a/b[y='2006']", "//*[b]/c"] {
            assert_eq!(mapped.execute(q).unwrap(), heap.execute(q).unwrap(), "{q}");
        }
        let s = mapped.stats();
        assert_eq!(s.plan_cache_misses, 5);
        let snap = mapped.snapshot();
        assert!(
            snap.index()
                .as_mapped()
                .expect("still file-backed")
                .file_bytes()
                > 0
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_hammering_is_deterministic() {
        let svc = service(ServiceConfig {
            max_concurrency: 4,
            ..ServiceConfig::default()
        });
        let queries = ["//a/b[c]", "//a//b", "//b/y", "//a/b[y='2006']"];
        let expected: Vec<ResultSet> = queries
            .iter()
            .map(|q| twig2stack::evaluate(svc.snapshot().doc(), &parse_twig(q).unwrap()))
            .collect();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let svc = &svc;
                let expected = &expected;
                scope.spawn(move || {
                    for round in 0..20 {
                        let i = (t + round) % queries.len();
                        assert_eq!(svc.execute(queries[i]).unwrap(), expected[i]);
                    }
                });
            }
        });
        let s = svc.stats();
        assert_eq!(s.queries_admitted, 8 * 20);
        assert_eq!(
            s.queries_rejected, 0,
            "waiters queue; nothing sheds at this load"
        );
        assert_eq!(s.analyses_run + s.plan_cache_hits, 8 * 20);
        assert!(s.plan_cache_hits >= 8 * 20 - 4 * 8, "most lookups hit");
    }

    #[test]
    fn apply_edit_rotates_and_queries_see_the_new_document() {
        let svc = service(ServiceConfig::default());
        let before = svc.execute("//a/b").unwrap();
        let root = svc.snapshot().doc().root();
        let receipt = svc
            .apply_edit(&EditOp::InsertSubtree {
                parent: Some(root),
                position: 0,
                subtree: xmldom::parse("<b><c/></b>").unwrap(),
            })
            .unwrap();
        assert_eq!(receipt.version, 1);
        assert!(
            receipt.delta.renumbered,
            "first insert into a dense document renumbers"
        );
        assert!(receipt.rebuilt);
        let after = svc.execute("//a/b").unwrap();
        assert_eq!(after.len(), before.len() + 1);
        let snap = svc.snapshot();
        assert_eq!(snap.version(), 1);
        let gtp = parse_twig("//a/b").unwrap();
        assert_eq!(
            after,
            twig2stack::evaluate(snap.doc(), &gtp),
            "index agrees with a DOM walk"
        );
        let s = svc.stats();
        assert_eq!(s.edits_applied, 1);
        assert_eq!(s.snapshot_rotations, 1);
    }

    #[test]
    fn rotation_invalidates_touched_plans_and_keeps_disjoint_ones() {
        let svc = service(ServiceConfig::default());
        let root = svc.snapshot().doc().root();
        // First edit renumbers (rebuild) and leaves stride-16 gaps, so
        // the second edit below can take the incremental patch path.
        svc.apply_edit(&EditOp::InsertSubtree {
            parent: Some(root),
            position: 0,
            subtree: xmldom::parse("<b><c/></b>").unwrap(),
        })
        .unwrap();
        svc.execute("//d").unwrap();
        svc.execute("//b/c").unwrap();
        assert_eq!(svc.cached_plans(), 2);
        let snap = svc.snapshot();
        let new_b = snap.doc().children(snap.doc().root()).next().unwrap();
        let receipt = svc
            .apply_edit(&EditOp::InsertSubtree {
                parent: Some(new_b),
                position: 1,
                subtree: xmldom::parse("<c/>").unwrap(),
            })
            .unwrap();
        assert!(
            !receipt.rebuilt,
            "gap-fitting insert on a known path patches"
        );
        assert_eq!(receipt.delta.changed_labels.len(), 1, "only c changed");
        assert_eq!(
            receipt.invalidated_plans, 1,
            "//b/c scans c; //d is disjoint"
        );
        let before = svc.stats();
        svc.execute("//d").unwrap();
        assert_eq!(
            svc.stats().plan_cache_hits,
            before.plan_cache_hits + 1,
            "//d survived"
        );
        svc.execute("//b/c").unwrap();
        assert_eq!(
            svc.stats().plan_cache_misses,
            before.plan_cache_misses + 1,
            "//b/c re-planned"
        );
        let gtp = parse_twig("//b/c").unwrap();
        let snap = svc.snapshot();
        assert_eq!(
            svc.execute("//b/c").unwrap(),
            twig2stack::evaluate(snap.doc(), &gtp)
        );
        assert_eq!(svc.stats().plan_cache_invalidations, 1);
    }

    #[test]
    fn pinned_snapshots_survive_rotation() {
        let svc = service(ServiceConfig::default());
        let pinned = svc.snapshot();
        let gtp = parse_twig("//a/b").unwrap();
        let old_rows = twig2stack::evaluate(pinned.doc(), &gtp);
        let root = pinned.doc().root();
        svc.apply_edit(&EditOp::DeleteSubtree {
            target: pinned.doc().children(root).nth(1).unwrap(),
        })
        .unwrap();
        // The pinned generation is untouched: same document, same rows.
        assert_eq!(pinned.version(), 0);
        assert_eq!(twig2stack::evaluate(pinned.doc(), &gtp), old_rows);
        assert_ne!(svc.execute("//a/b").unwrap().len(), old_rows.len());
    }

    #[test]
    fn editing_a_mapped_service_materializes_a_heap_snapshot() {
        let path =
            std::env::temp_dir().join(format!("twigserve-mapped-edit-{}.t2s", std::process::id()));
        xmlindex::write_mapped_index(&xmldom::parse(DOC).unwrap(), &path).unwrap();
        let svc =
            QueryService::open_mapped(xmldom::parse(DOC).unwrap(), &path, ServiceConfig::default())
                .unwrap();
        svc.execute("//a/b[c]").unwrap();
        let root = svc.snapshot().doc().root();
        let receipt = svc
            .apply_edit(&EditOp::InsertSubtree {
                parent: Some(root),
                position: 0,
                subtree: xmldom::parse("<b><c/></b>").unwrap(),
            })
            .unwrap();
        assert!(
            receipt.rebuilt,
            "a read-only mapped index is always rebuilt to the heap"
        );
        assert_eq!(receipt.invalidated_plans, 1);
        let snap = svc.snapshot();
        assert!(
            snap.index().as_mapped().is_none(),
            "post-edit snapshot is heap-backed"
        );
        let gtp = parse_twig("//a/b[c]").unwrap();
        assert_eq!(
            svc.execute("//a/b[c]").unwrap(),
            twig2stack::evaluate(snap.doc(), &gtp)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejected_edits_change_nothing() {
        let svc = service(ServiceConfig::default());
        svc.execute("//a/b[c]").unwrap();
        let missing = xmldom::NodeId::from_index(9_999);
        let err = svc
            .apply_edit(&EditOp::DeleteSubtree { target: missing })
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Edit(xmldom::EditError::InvalidNode(_))
        ));
        assert!(err.to_string().contains("edit rejected"));
        let s = svc.stats();
        assert_eq!(s.edits_applied, 0);
        assert_eq!(s.snapshot_rotations, 0);
        assert_eq!(svc.snapshot().version(), 0);
        assert_eq!(svc.cached_plans(), 1, "the cached plan is still there");
    }

    /// A document the cost model organically mispredicts: 240 `a`
    /// siblings (one holding the only `b` reachable as `//a//b`) plus 30
    /// `b` elements outside any `a`. The leaf stream looks 1 element
    /// deep (only one *feasible* `b`), internal streams dominate, and
    /// pruning saves under 1/8 — so the adaptive planner picks TJFast
    /// with pruning disabled. But an unpruned leaf stream delivers all
    /// 31 `b`s, 4×+16 over the prediction: a misprediction per run.
    fn mispredicted_doc() -> Document {
        let mut xml = String::from("<r><a><b/></a>");
        xml.push_str(&"<a/>".repeat(239));
        xml.push_str(&"<b/>".repeat(30));
        xml.push_str("</r>");
        xmldom::parse(&xml).unwrap()
    }

    #[test]
    fn feedback_loop_replans_after_repeated_mispredictions() {
        let svc = QueryService::build(
            mispredicted_doc(),
            ServiceConfig {
                planner: PlannerMode::Adaptive,
                ..ServiceConfig::default()
            },
        );
        let q = "//a//b";
        let before = svc.planned(q).unwrap();
        assert_eq!(
            before.engine,
            PlanEngine::TJFast,
            "the mispredicting choice"
        );
        assert_eq!(before.predicted_scan, 1, "one feasible leaf predicted");
        let expected = twig2stack::evaluate(svc.snapshot().doc(), &parse_twig(q).unwrap());
        // Strikes 1..=REPLAN_AFTER alarm; the third triggers the replan.
        for i in 1..=3 {
            assert_eq!(svc.execute(q).unwrap().sorted(), expected.clone().sorted());
            let s = svc.stats();
            assert_eq!(s.plan_mispredictions, i, "every TJFast run alarms");
            assert_eq!(s.plans_replanned, u64::from(i == 3));
        }
        // The feedback loop flipped the decision: the measured 31-element
        // leaf scan, weighted by TJFast's ~16× per-record cost, loses to
        // the region engine's estimate, and the prediction is recentered
        // on the full region scan (240 a + 31 b elements).
        let after = svc.planned(q).unwrap();
        assert_eq!(after.engine, PlanEngine::Twig2Stack, "decision flipped");
        assert_eq!(after.predicted_scan, 271);
        // The corrected plan answers identically and stops alarming.
        assert_eq!(svc.execute(q).unwrap().sorted(), expected.sorted());
        let s = svc.stats();
        assert_eq!(
            s.plan_mispredictions, 3,
            "the replacement plan is in tolerance"
        );
        assert_eq!(s.plans_replanned, 1, "strikes reset with the new plan");
    }

    #[test]
    fn apply_edits_batches_n_ops_into_one_rotation() {
        let batched = service(ServiceConfig::default());
        let serial = service(ServiceConfig::default());
        batched.execute("//b/c").unwrap();
        let ops: Vec<EditOp> = (0..3)
            .map(|i| EditOp::InsertSubtree {
                parent: Some(batched.snapshot().doc().root()),
                position: i,
                subtree: xmldom::parse("<b><c/></b>").unwrap(),
            })
            .collect();
        let receipt = batched.apply_edits(&ops).unwrap();
        assert_eq!(receipt.ops_applied, 3);
        assert_eq!(receipt.version, 1, "one rotation for the whole batch");
        for op in &ops {
            serial.apply_edit(op).unwrap();
        }
        for q in ["//a/b", "//b/c", "//a//b", "//d//c"] {
            assert_eq!(
                batched.execute(q).unwrap(),
                serial.execute(q).unwrap(),
                "batch is equivalent to sequential application: {q}"
            );
        }
        let b = batched.stats();
        assert_eq!(b.edits_applied, 3);
        assert_eq!(b.snapshot_rotations, 1, "N ops, one snapshot swap");
        assert_eq!(batched.snapshot().version(), 1);
        let s = serial.stats();
        assert_eq!(s.edits_applied, 3);
        assert_eq!(
            s.snapshot_rotations, 3,
            "sequential application rotates per op"
        );
        assert_eq!(serial.snapshot().version(), 3);
    }

    #[test]
    fn apply_edits_is_all_or_nothing() {
        let svc = service(ServiceConfig::default());
        let before = svc.execute("//a/b[c]").unwrap();
        let root = svc.snapshot().doc().root();
        let ops = [
            EditOp::InsertSubtree {
                parent: Some(root),
                position: 0,
                subtree: xmldom::parse("<b><c/></b>").unwrap(),
            },
            EditOp::DeleteSubtree {
                target: xmldom::NodeId::from_index(9_999),
            },
        ];
        let err = svc.apply_edits(&ops).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Edit(xmldom::EditError::InvalidNode(_))
        ));
        let s = svc.stats();
        assert_eq!(s.edits_applied, 0, "the valid prefix was not published");
        assert_eq!(s.snapshot_rotations, 0);
        assert_eq!(svc.snapshot().version(), 0);
        assert_eq!(svc.execute("//a/b[c]").unwrap(), before);
    }

    #[test]
    fn empty_edit_batch_is_a_noop() {
        let svc = service(ServiceConfig::default());
        let receipt = svc.apply_edits(&[]).unwrap();
        assert_eq!(
            receipt,
            BatchEditReceipt {
                version: 0,
                ops_applied: 0,
                rebuilt: false,
                invalidated_plans: 0,
                deltas: Vec::new(),
            }
        );
        assert_eq!(svc.stats().snapshot_rotations, 0);
    }
}
