//! The cost-based planner: engine + pruning + enumeration selection.
//!
//! `twigserve` can execute every engine in the workspace — Twig²Stack
//! (full or early enumeration), TwigStack, PathStack, and TJFast — each
//! with pruning on or off. No single configuration wins everywhere
//! (EXPERIMENTS.md Fig S: pruning helps 7/9 figure-16 queries but *hurts*
//! XMark-Q2), so the service decides per query, once per canonical form,
//! and stores the [`PlanDecision`] in the cached plan.
//!
//! Two modes ([`PlannerMode`]):
//!
//! * **`Forced(engine)`** — the escape hatch and the default: always use
//!   `engine` with the config's [`PruningPolicy`] and full enumeration,
//!   exactly the pre-planner behaviour (every pinned test keeps its
//!   engine). An engine forced outside its applicability gate (a
//!   decomposition baseline on a GTP-extension query, PathStack on a
//!   branchy twig) falls back to Twig²Stack, which handles everything.
//! * **`Adaptive`** — estimate stream sizes, skip-scan savings, and
//!   output selectivities from the path summary
//!   ([`gtpquery::cost::QueryEstimate`]) and apply the DESIGN.md §14
//!   decision table.
//!
//! Adaptive decisions carry their *predictions* (elements to scan,
//! expected results). The service records them next to the actual
//! counters on every execution (`plan_predicted_scan` vs
//! `elements_scanned` in the metrics sidecar) and bumps
//! `plan_mispredictions` when the actual scan leaves the tolerance window
//! ([`scan_within_tolerance`]) — a wrong cost model is a counter you can
//! alert on, not a silent slowdown.

use gtpquery::cost::{is_full_twig, is_linear, PlanEngine, QueryEstimate};
use gtpquery::Gtp;
use xmldom::LabelTable;
use xmlindex::{IndexView, PruningPolicy};

/// How the service plans queries. The default is
/// `Forced(PlanEngine::Twig2Stack)` — the exact pre-planner behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerMode {
    /// Cost-based per-query decisions from the path summary (DESIGN.md
    /// §14 decision table).
    Adaptive,
    /// Always use this engine, with the config's [`PruningPolicy`] and
    /// full enumeration. Falls back to Twig²Stack when the query is
    /// outside the engine's fragment (see [`applicable`]).
    Forced(PlanEngine),
}

impl Default for PlannerMode {
    fn default() -> Self {
        PlannerMode::Forced(PlanEngine::Twig2Stack)
    }
}

/// The planner's verdict for one cached plan: which engine runs it, with
/// which pruning policy and enumeration strategy, plus the predictions
/// the verdict was derived from (zero in forced mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanDecision {
    /// Engine that evaluates this plan.
    pub engine: PlanEngine,
    /// Pruning policy the plan's streams were built with.
    pub policy: PruningPolicy,
    /// Early (streaming, bounded-memory) enumeration instead of the
    /// full match-then-enumerate pipeline (Twig²Stack only; falls back
    /// to full enumeration when the query shape does not support it).
    pub early: bool,
    /// True iff this decision came from the cost model (predictions are
    /// recorded and checked only for adaptive decisions).
    pub adaptive: bool,
    /// Predicted elements delivered by the plan's streams per execution.
    pub predicted_scan: u64,
    /// Predicted result rows per execution (a lower-bound estimate: the
    /// most selective output node's feasible element count).
    pub predicted_results: u64,
}

impl Default for PlanDecision {
    fn default() -> Self {
        PlanDecision {
            engine: PlanEngine::Twig2Stack,
            policy: PruningPolicy::Enabled,
            early: false,
            adaptive: false,
            predicted_scan: 0,
            predicted_results: 0,
        }
    }
}

/// True iff `engine` can evaluate `gtp` at all. Twig²Stack handles every
/// GTP; the decomposition baselines handle full twigs only, and PathStack
/// additionally requires a single chain.
pub fn applicable(engine: PlanEngine, gtp: &Gtp) -> bool {
    match engine {
        PlanEngine::Twig2Stack => true,
        PlanEngine::TwigStack | PlanEngine::TJFast => is_full_twig(gtp),
        PlanEngine::PathStack => is_full_twig(gtp) && is_linear(gtp),
    }
}

/// Decide how to run `gtp`, per `mode`. Called once per plan-cache miss;
/// the result lives in the cached plan.
pub fn decide<I: IndexView>(
    gtp: &Gtp,
    index: &I,
    labels: &LabelTable,
    mode: PlannerMode,
    config_policy: PruningPolicy,
) -> PlanDecision {
    let decision = match mode {
        PlannerMode::Forced(engine) => {
            let engine = if applicable(engine, gtp) {
                engine
            } else {
                PlanEngine::Twig2Stack
            };
            PlanDecision { engine, policy: config_policy, ..PlanDecision::default() }
        }
        PlannerMode::Adaptive => {
            let est = QueryEstimate::compute(gtp, index.summary(), labels);
            let rec = est.recommend(gtp);
            let engine = if applicable(rec.engine, gtp) {
                rec.engine
            } else {
                PlanEngine::Twig2Stack
            };
            let policy = if rec.pruning {
                PruningPolicy::Enabled
            } else {
                PruningPolicy::Disabled
            };
            let predicted_scan = match engine {
                PlanEngine::TJFast => est.leaf_scan,
                _ if policy.is_enabled() => est.scan_pruned,
                _ => est.scan_full,
            };
            PlanDecision {
                engine,
                policy,
                early: rec.early,
                adaptive: true,
                predicted_scan,
                predicted_results: est.expected_results,
            }
        }
    };
    twigobs::bump(match decision.engine {
        PlanEngine::Twig2Stack => twigobs::Counter::PlanChoicesTwig2Stack,
        PlanEngine::TwigStack => twigobs::Counter::PlanChoicesTwigStack,
        PlanEngine::PathStack => twigobs::Counter::PlanChoicesPathStack,
        PlanEngine::TJFast => twigobs::Counter::PlanChoicesTJFast,
    });
    decision
}

/// Re-plan after repeated mispredictions, blending the **measured** scan
/// into the estimate (the planner feedback loop, ROADMAP item 4a).
///
/// The summary estimate is recomputed, but the cost the decision table
/// held for `prior`'s engine is replaced with `measured_scan` — the
/// number the alarms said the model got wrong:
///
/// * **engine** — if the prior engine was TJFast, the measured leaf scan
///   (weighted by its ~16× per-record cost) is compared against the
///   *estimated* region cost, so a leaf stream the model undershot (e.g.
///   infeasible leaves an unpruned stream still delivers) sends the query
///   back to the region engine; if the prior engine was a region engine,
///   the measured region scan is what TJFast's estimate must now beat;
/// * **pruning** — when the prior plan ran pruned region streams, the
///   measurement *is* the pruned scan: pruning keeps paying only if it
///   still leaves ≥ 1/8 of the full scan in savings. Other engine/policy
///   combinations say nothing new about the filters, so the static
///   estimate stands;
/// * **predictions** — recentered on the measurement when the chosen
///   engine and policy are the ones that produced it (the model was
///   wrong, the measurement is ground truth), or on the static estimate
///   for the new configuration when the decision changed — either way a
///   well-behaved replacement plan stops alarming.
pub fn replan<I: IndexView>(
    gtp: &Gtp,
    index: &I,
    labels: &LabelTable,
    prior: &PlanDecision,
    measured_scan: u64,
) -> PlanDecision {
    let est = QueryEstimate::compute(gtp, index.summary(), labels);
    let (tjfast_cost, region_cost) = if prior.engine == PlanEngine::TJFast {
        (measured_scan.saturating_mul(16), est.region_cost())
    } else {
        (est.tjfast_cost(), measured_scan)
    };
    let mut engine = PlanEngine::Twig2Stack;
    if is_full_twig(gtp) && tjfast_cost.saturating_mul(2) < region_cost {
        engine = PlanEngine::TJFast;
    }
    let pruning_pays = if est.unsatisfiable {
        true
    } else if prior.engine != PlanEngine::TJFast && prior.policy.is_enabled() {
        est.scan_full.saturating_sub(measured_scan) * 8 >= est.scan_full
    } else {
        est.pruning_pays()
    };
    let policy = if pruning_pays { PruningPolicy::Enabled } else { PruningPolicy::Disabled };
    let predicted_scan = if (engine, policy) == (prior.engine, prior.policy) {
        measured_scan
    } else {
        match engine {
            PlanEngine::TJFast => est.leaf_scan,
            _ if policy.is_enabled() => est.scan_pruned,
            _ => est.scan_full,
        }
    };
    let decision = PlanDecision {
        engine,
        policy,
        early: engine == PlanEngine::Twig2Stack
            && est.expected_results > (1 << 20)
            && est.expected_results > est.scan_full.max(measured_scan),
        adaptive: true,
        predicted_scan,
        predicted_results: est.expected_results,
    };
    twigobs::bump(match decision.engine {
        PlanEngine::Twig2Stack => twigobs::Counter::PlanChoicesTwig2Stack,
        PlanEngine::TwigStack => twigobs::Counter::PlanChoicesTwigStack,
        PlanEngine::PathStack => twigobs::Counter::PlanChoicesPathStack,
        PlanEngine::TJFast => twigobs::Counter::PlanChoicesTJFast,
    });
    decision
}

/// The misprediction tolerance window: an adaptive execution whose actual
/// stream scan lands outside a factor-4 band (plus a small absolute slack
/// for tiny queries) around the prediction counts as a misprediction.
/// Factor 4 separates "estimate noise" (feasible sets over-approximate,
/// uniform-density cover scaling) from "the model is wrong" (an engine
/// picked on a cardinality that was off by orders of magnitude).
pub fn scan_within_tolerance(predicted: u64, actual: u64) -> bool {
    actual <= predicted.saturating_mul(4).saturating_add(16)
        && predicted <= actual.saturating_mul(4).saturating_add(16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtpquery::parse_twig;
    use xmlindex::ElementIndex;

    fn fixture() -> (xmldom::Document, ElementIndex) {
        let doc = xmldom::parse("<a><b><c/></b><b/><d><b><c/></b></d></a>").unwrap();
        let index = ElementIndex::build(&doc);
        (doc, index)
    }

    #[test]
    fn default_mode_is_forced_twig2stack() {
        assert_eq!(PlannerMode::default(), PlannerMode::Forced(PlanEngine::Twig2Stack));
    }

    #[test]
    fn forced_mode_keeps_the_config_policy_and_engine() {
        let (doc, index) = fixture();
        let gtp = parse_twig("//a/b[c]").unwrap();
        let d = decide(
            &gtp,
            &index,
            doc.labels(),
            PlannerMode::Forced(PlanEngine::TwigStack),
            PruningPolicy::Disabled,
        );
        assert_eq!(d.engine, PlanEngine::TwigStack);
        assert_eq!(d.policy, PruningPolicy::Disabled);
        assert!(!d.adaptive);
        assert_eq!(d.predicted_scan, 0, "forced mode predicts nothing");
    }

    #[test]
    fn forcing_an_inapplicable_engine_falls_back_to_twig2stack() {
        let (doc, index) = fixture();
        // `b!` is non-return: outside every decomposition baseline.
        let gtp = parse_twig("//a/b!/c").unwrap();
        for engine in [PlanEngine::TwigStack, PlanEngine::PathStack, PlanEngine::TJFast] {
            let d = decide(
                &gtp,
                &index,
                doc.labels(),
                PlannerMode::Forced(engine),
                PruningPolicy::Enabled,
            );
            assert_eq!(d.engine, PlanEngine::Twig2Stack, "{engine:?}");
        }
        // A branchy (non-linear) full twig is out of PathStack's fragment.
        let branchy = parse_twig("//a[b]/d").unwrap();
        let d = decide(
            &branchy,
            &index,
            doc.labels(),
            PlannerMode::Forced(PlanEngine::PathStack),
            PruningPolicy::Enabled,
        );
        assert_eq!(d.engine, PlanEngine::Twig2Stack);
    }

    #[test]
    fn adaptive_mode_records_predictions() {
        let (doc, index) = fixture();
        let gtp = parse_twig("/a/b/c").unwrap();
        let d = decide(&gtp, &index, doc.labels(), PlannerMode::Adaptive, PruningPolicy::Enabled);
        assert!(d.adaptive);
        assert!(d.predicted_scan > 0);
        assert!(!d.early, "tiny results never trigger early enumeration");
    }

    #[test]
    fn tolerance_window_is_a_factor_four_band() {
        assert!(scan_within_tolerance(100, 100));
        assert!(scan_within_tolerance(100, 400));
        assert!(scan_within_tolerance(100, 25));
        assert!(!scan_within_tolerance(100, 500));
        assert!(!scan_within_tolerance(1000, 100));
        // Absolute slack keeps tiny queries out of the alarm.
        assert!(scan_within_tolerance(0, 16));
        assert!(scan_within_tolerance(16, 0));
    }
}
