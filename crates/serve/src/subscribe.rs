//! Standing-query subscriptions over the edit-rotated service
//! (DESIGN.md §17): the serve-layer face of `twig2stack::subscribe`.
//!
//! A [`SubscriptionService`] wraps a [`QueryService`] and keeps a set of
//! registered GTP subscriptions. Edits applied through the wrapper
//! first rotate the snapshot exactly like
//! [`QueryService::apply_edit`] / [`QueryService::apply_edits`], then
//! drive **one** shared-automaton pass over the rotated document and
//! emit a [`SubNotification`] for every subscription whose match set
//! changed — the change-notification layer for the PR 8/9 write path.
//!
//! Notification semantics: per subscription the service remembers the
//! last published match set (the baseline is the snapshot at
//! registration time). After a rotation, `added` / `removed` are the
//! exact row-level delta against that memory, and the post-edit match
//! set always equals re-running the query solo on the rotated snapshot
//! (`tests/subscription_lifecycle.rs` pins this). Edits applied behind
//! the wrapper's back (directly on the inner [`QueryService`]) are
//! picked up by the next rotation or an explicit
//! [`poll`](SubscriptionService::poll): deltas then cover every
//! rotation since the last notification, never lost.

use crate::{BatchEditReceipt, EditReceipt, QueryService, ServeError, Snapshot};
use gtpquery::{parse_twig, Cell, Gtp, ResultSet};
use std::collections::HashSet;
use std::sync::{Arc, Mutex};
use twig2stack::{run_subscriptions_doc, MatchOptions, SharedAutomaton};
use xmldom::{EditDelta, EditOp};

/// Handle for one registered subscription. Ids are never reused: an
/// unregistered id stays dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(u32);

impl SubscriptionId {
    /// The id's registration ordinal.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One subscription's match-set change, emitted after a rotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubNotification {
    /// The subscription whose matches changed.
    pub sub: SubscriptionId,
    /// Snapshot version the delta was computed against.
    pub version: u64,
    /// Rows present now but not in the last published set; node ids
    /// resolve against the rotated snapshot.
    pub added: ResultSet,
    /// Rows present in the last published set but gone now; node ids
    /// refer to the *previous* snapshot (the elements no longer exist).
    pub removed: ResultSet,
}

/// A result cell keyed for cross-snapshot row identity.
///
/// `NodeId`s are dense preorder arena indices, so a raw id cannot
/// identify an element across rotations: a splice shifts every id at or
/// after the splice point. (Region tag positions are no better — the
/// first insert into a dense document renumbers all of them.) What *is*
/// exact is the edit layer's own bookkeeping: every [`EditDelta`]
/// records the splice coordinates, and [`EditDelta::id_shift`] maps
/// surviving pre-edit ids onto post-edit ids. So keys hold node ids,
/// and [`remap_keys`] carries a slot's stored keys through each applied
/// delta before diffing — renumbering is irrelevant to this scheme.
/// `Gone` marks a key that referenced a deleted node; fresh keys never
/// contain it, so such rows always diff as removed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyCell {
    Node(u32),
    Null,
    Group(Vec<u32>),
    Gone,
}

type RowKey = Vec<KeyCell>;

/// Identity keys for every row of `rs`, in the node-id coordinates of
/// the snapshot the rows were computed on.
fn row_keys(rs: &ResultSet) -> Vec<RowKey> {
    rs.rows
        .iter()
        .map(|row| {
            row.iter()
                .map(|c| match c {
                    Cell::Node(n) => KeyCell::Node(n.index() as u32),
                    Cell::Null => KeyCell::Null,
                    Cell::Group(g) => KeyCell::Group(g.iter().map(|n| n.index() as u32).collect()),
                })
                .collect()
        })
        .collect()
}

/// Carry stored row keys across one applied edit via
/// [`EditDelta::map_id`]: ids before the splice are unchanged, ids
/// inside the removed range become [`KeyCell::Gone`], ids after it
/// shift by [`EditDelta::id_shift`]. A group cell that loses any member
/// goes `Gone` wholesale — its row's grouping changed, which correctly
/// surfaces as removed + re-added.
fn remap_keys(keys: &mut [RowKey], delta: &EditDelta) {
    for key in keys {
        for cell in key {
            let mapped = match cell {
                KeyCell::Node(n) => delta.map_id(*n).map(KeyCell::Node),
                KeyCell::Group(g) => g
                    .iter()
                    .map(|&n| delta.map_id(n))
                    .collect::<Option<Vec<u32>>>()
                    .map(KeyCell::Group),
                KeyCell::Null => Some(KeyCell::Null),
                KeyCell::Gone => Some(KeyCell::Gone),
            };
            *cell = mapped.unwrap_or(KeyCell::Gone);
        }
    }
}

/// One registered subscription's standing state.
struct Slot {
    query: String,
    gtp: Gtp,
    /// The last published match set (registration baseline, then
    /// updated by every notification pass). Node ids refer to the
    /// snapshot the set was computed on.
    last: ResultSet,
    /// Identity keys for `last`, row-aligned, kept in the *current*
    /// snapshot's node-id coordinates by [`remap_keys`] on every edit
    /// applied through the wrapper — the basis of the delta diff.
    last_keys: Vec<RowKey>,
}

/// Registry + cached automaton. The automaton is invalidated by
/// register/unregister and rebuilt lazily on the next pass (build cost
/// is linear in total query size).
#[derive(Default)]
struct Registry {
    /// Index = subscription id; `None` = unregistered.
    slots: Vec<Option<Slot>>,
    /// Compiled automaton over the live slots plus the automaton-order →
    /// slot-index mapping.
    auto: Option<(SharedAutomaton, Vec<usize>)>,
}

impl Registry {
    fn live(&self) -> impl Iterator<Item = (usize, &Slot)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (i, s)))
    }

    /// The compiled automaton (rebuilding it if stale).
    fn automaton(&mut self) -> &(SharedAutomaton, Vec<usize>) {
        if self.auto.is_none() {
            let (gtps, map): (Vec<Gtp>, Vec<usize>) =
                self.live().map(|(i, s)| (s.gtp.clone(), i)).unzip();
            self.auto = Some((SharedAutomaton::build(gtps), map));
        }
        self.auto.as_ref().expect("just built")
    }
}

/// Continuous multi-query subscriptions over a [`QueryService`]
/// (ROADMAP item 2; DESIGN.md §17).
pub struct SubscriptionService {
    svc: Arc<QueryService>,
    registry: Mutex<Registry>,
}

impl SubscriptionService {
    /// Attach a subscription registry to `svc`. The service is shared:
    /// queries keep flowing through `svc` unchanged.
    pub fn new(svc: Arc<QueryService>) -> Self {
        SubscriptionService {
            svc,
            registry: Mutex::new(Registry::default()),
        }
    }

    /// The wrapped query service.
    pub fn service(&self) -> &Arc<QueryService> {
        &self.svc
    }

    /// Register a standing query. The current snapshot's matches become
    /// the notification baseline: the first notification after an edit
    /// reports the delta against *this* moment.
    pub fn register(&self, query: &str) -> Result<SubscriptionId, ServeError> {
        let gtp = parse_twig(query)?;
        let mut reg = self
            .registry
            .lock()
            .expect("subscription registry poisoned");
        let snap = self.svc.snapshot();
        let last = twig2stack::evaluate(snap.doc(), &gtp);
        let last_keys = row_keys(&last);
        let id = SubscriptionId(reg.slots.len() as u32);
        reg.slots.push(Some(Slot {
            query: query.to_string(),
            gtp,
            last,
            last_keys,
        }));
        reg.auto = None;
        Ok(id)
    }

    /// Drop a subscription. Returns false if the id was never live.
    /// Unregistering under snapshot rotation is safe: the in-flight
    /// pass holds the previous automaton and simply has no slot to
    /// publish into afterwards.
    pub fn unregister(&self, id: SubscriptionId) -> bool {
        let mut reg = self
            .registry
            .lock()
            .expect("subscription registry poisoned");
        match reg.slots.get_mut(id.index()) {
            Some(slot @ Some(_)) => {
                *slot = None;
                reg.auto = None;
                true
            }
            _ => false,
        }
    }

    /// Number of live subscriptions.
    pub fn len(&self) -> usize {
        self.registry
            .lock()
            .expect("subscription registry poisoned")
            .live()
            .count()
    }

    /// True iff no subscription is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The last published match set of `id` (its registered-query
    /// results as of the most recent notification pass).
    pub fn matches(&self, id: SubscriptionId) -> Option<ResultSet> {
        let reg = self
            .registry
            .lock()
            .expect("subscription registry poisoned");
        reg.slots.get(id.index())?.as_ref().map(|s| s.last.clone())
    }

    /// The registered query text of `id`.
    pub fn query(&self, id: SubscriptionId) -> Option<String> {
        let reg = self
            .registry
            .lock()
            .expect("subscription registry poisoned");
        reg.slots.get(id.index())?.as_ref().map(|s| s.query.clone())
    }

    /// Apply one edit through the wrapped service, then notify: one
    /// shared-automaton pass over the rotated snapshot, one delta per
    /// changed subscription (in id order).
    pub fn apply_edit(
        &self,
        op: &EditOp,
    ) -> Result<(EditReceipt, Vec<SubNotification>), ServeError> {
        let mut reg = self
            .registry
            .lock()
            .expect("subscription registry poisoned");
        let receipt = self.svc.apply_edit(op)?;
        Self::remap_slots(&mut reg, std::slice::from_ref(&receipt.delta));
        let notes = self.notify(&mut reg);
        Ok((receipt, notes))
    }

    /// Apply an edit batch (one rotation, like
    /// [`QueryService::apply_edits`]), then notify once: deltas span the
    /// whole batch, intermediate states are never observed.
    pub fn apply_edits(
        &self,
        ops: &[EditOp],
    ) -> Result<(BatchEditReceipt, Vec<SubNotification>), ServeError> {
        let mut reg = self
            .registry
            .lock()
            .expect("subscription registry poisoned");
        let receipt = self.svc.apply_edits(ops)?;
        Self::remap_slots(&mut reg, &receipt.deltas);
        let notes = self.notify(&mut reg);
        Ok((receipt, notes))
    }

    /// Carry every live slot's stored keys through the deltas of a
    /// rotation just applied through the wrapper, composing them in
    /// application order (delta `i` maps intermediate state `i` ids to
    /// state `i + 1` — see [`BatchEditReceipt::deltas`]).
    fn remap_slots(reg: &mut Registry, deltas: &[EditDelta]) {
        for slot in reg.slots.iter_mut().flatten() {
            for delta in deltas {
                remap_keys(&mut slot.last_keys, delta);
            }
        }
    }

    /// Recompute every subscription against the *current* snapshot and
    /// emit the deltas — catches rotations applied directly on the
    /// wrapped service. Such rotations carry no [`EditDelta`] the
    /// wrapper can observe, so stored keys are diffed as-is: the match
    /// *sets* are always exact, but added/removed attribution is
    /// best-effort when a bypassing splice shifted ids of surviving
    /// rows. Apply edits through the wrapper for exact deltas.
    pub fn poll(&self) -> Vec<SubNotification> {
        let mut reg = self
            .registry
            .lock()
            .expect("subscription registry poisoned");
        self.notify(&mut reg)
    }

    /// One pass: run the shared automaton over the current snapshot's
    /// document (value predicates resolve against it as the text
    /// source), diff per subscription, publish.
    fn notify(&self, reg: &mut Registry) -> Vec<SubNotification> {
        if reg.live().next().is_none() {
            return Vec::new();
        }
        let snap: Arc<Snapshot> = self.svc.snapshot();
        let version = snap.version();
        let (results, map) = {
            let (auto, map) = reg.automaton();
            let (results, _) = run_subscriptions_doc(snap.doc(), auto, MatchOptions::default());
            (results, map.clone())
        };
        let mut notes = Vec::new();
        for (slot_index, fresh) in map.into_iter().zip(results) {
            let slot = reg.slots[slot_index]
                .as_mut()
                .expect("automaton maps only live slots");
            let fresh_keys = row_keys(&fresh);
            let (added, removed) = diff(&slot.last, &slot.last_keys, &fresh, &fresh_keys);
            slot.last = fresh;
            slot.last_keys = fresh_keys;
            if !added.is_empty() || !removed.is_empty() {
                twigobs::bump(twigobs::Counter::SubNotifications);
                notes.push(SubNotification {
                    sub: SubscriptionId(slot_index as u32),
                    version,
                    added,
                    removed,
                });
            }
        }
        notes
    }
}

/// Row-level set difference in both directions, keyed on delta-remapped
/// node ids (see [`KeyCell`]). Both inputs are duplicate-free
/// (enumeration guarantees it), so hash-set membership is exact; row
/// order within each delta follows the source set's document order.
/// `added` rows carry the *new* snapshot's node ids; `removed` rows
/// carry the *previous* snapshot's (those elements no longer exist).
fn diff(
    old: &ResultSet,
    old_keys: &[RowKey],
    new: &ResultSet,
    new_keys: &[RowKey],
) -> (ResultSet, ResultSet) {
    let old_set: HashSet<&RowKey> = old_keys.iter().collect();
    let new_set: HashSet<&RowKey> = new_keys.iter().collect();
    let mut added = ResultSet::new(new.columns.clone());
    for (row, key) in new.rows.iter().zip(new_keys) {
        if !old_set.contains(key) {
            added.push(row.clone());
        }
    }
    let mut removed = ResultSet::new(old.columns.clone());
    for (row, key) in old.rows.iter().zip(old_keys) {
        if !new_set.contains(key) {
            removed.push(row.clone());
        }
    }
    (added, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;
    use xmldom::parse;
    use xmlindex::ElementIndex;

    fn service(xml: &str) -> Arc<QueryService> {
        let doc = parse(xml).unwrap();
        let index = ElementIndex::build(&doc);
        Arc::new(QueryService::new(doc, index, ServiceConfig::default()))
    }

    #[test]
    fn register_baseline_and_matches() {
        let subs = SubscriptionService::new(service("<a><b/><b/></a>"));
        let id = subs.register("//a/b").unwrap();
        assert_eq!(subs.matches(id).unwrap().len(), 2);
        assert_eq!(subs.query(id).unwrap(), "//a/b");
        assert_eq!(subs.len(), 1);
        // No edit, no delta.
        assert!(subs.poll().is_empty());
    }

    #[test]
    fn bad_query_is_a_parse_error() {
        let subs = SubscriptionService::new(service("<a/>"));
        assert!(matches!(subs.register("//"), Err(ServeError::Parse(_))));
        assert!(subs.is_empty());
    }

    #[test]
    fn unregistered_id_stops_notifying() {
        let subs = SubscriptionService::new(service("<a><b/></a>"));
        let id = subs.register("//a/b").unwrap();
        assert!(subs.unregister(id));
        assert!(!subs.unregister(id));
        assert_eq!(subs.matches(id), None);
        let target = subs.service().snapshot().doc().root();
        let op = EditOp::DeleteSubtree { target };
        let (_, notes) = subs.apply_edit(&op).unwrap();
        assert!(notes.is_empty());
    }
}
