//! Property-based differential testing: Twig²Stack vs the naive oracle on
//! random documents × random GTP queries.
//!
//! These tests assert **exact** result equality — same rows, same order —
//! which exercises the paper's headline claim that the hierarchical-stack
//! enumeration is duplicate-free and document-ordered without any
//! post-processing, across:
//!
//! * recursive same-label nestings (small alphabets force them),
//! * PC and AD axes, mandatory and optional edges,
//! * return / group-return / non-return roles,
//! * the existence-checking optimization on and off,
//! * the streaming (never-build-a-DOM) entry point.

use gtpquery::{Axis, Gtp, GtpBuilder, QueryAnalysis, Role};
use proptest::prelude::*;
use twig2stack::{enumerate, evaluate_streaming, match_document, MatchOptions};
use twigbaselines::naive_evaluate;
use xmlgen::{generate_random_tree, RandomTreeConfig};
use xmldom::{write, Document, Indent};

const LABELS: [&str; 5] = ["a", "b", "c", "d", "*"];

/// Description of one random query node.
#[derive(Debug, Clone)]
struct NodeSpec {
    label: usize,
    parent: prop::sample::Index,
    axis: bool,     // true = PC
    optional: bool,
    role: u8, // 0 return, 1 non-return, 2 group
    /// Join the previous sibling's OR-group (AND/OR twigs); the subtree is
    /// then forced to non-return existence checks.
    or_with_prev: bool,
}

fn node_spec() -> impl Strategy<Value = NodeSpec> {
    (
        0usize..LABELS.len(),
        any::<prop::sample::Index>(),
        any::<bool>(),
        prop::bool::weighted(0.25),
        0u8..3,
        prop::bool::weighted(0.2),
    )
        .prop_map(|(label, parent, axis, optional, role, or_with_prev)| NodeSpec {
            label,
            parent,
            axis,
            optional,
            role,
            or_with_prev,
        })
}

fn build_query(specs: Vec<NodeSpec>, rooted: bool) -> Gtp {
    let gtp = build_query_inner(&specs, rooted, true);
    let analysis = QueryAnalysis::new(&gtp);
    if analysis.enumerable() && !analysis.columns().is_empty() {
        return gtp;
    }
    // Repair: retry without OR-groups, then fall back to all-return.
    let gtp = build_query_inner(&specs, rooted, false);
    let analysis = QueryAnalysis::new(&gtp);
    if analysis.enumerable() && !analysis.columns().is_empty() {
        gtp
    } else {
        gtp.all_return()
    }
}

fn build_query_inner(specs: &[NodeSpec], rooted: bool, with_or: bool) -> Gtp {
    let mut b = GtpBuilder::new(LABELS[specs[0].label], rooted);
    let root = b.root();
    b.role(root, map_role(specs[0].role));
    let mut ids = vec![root];
    let mut subtree_roots: Vec<gtpquery::QNodeId> = Vec::new();
    for spec in &specs[1..] {
        let parent = ids[spec.parent.index(ids.len())];
        let axis = if spec.axis { Axis::Child } else { Axis::Descendant };
        let id = b.add(parent, LABELS[spec.label], axis, spec.optional, map_role(spec.role));
        if with_or && spec.or_with_prev && !spec.optional {
            // Join the nearest previous mandatory sibling's OR-group.
            let sibling = {
                let g = b.clone().build();
                g.children(parent)
                    .iter()
                    .rev()
                    .skip(1)
                    .copied()
                    .find(|&c| g.edge(c).is_some_and(|e| !e.optional))
            };
            if let Some(sib) = sibling {
                b.same_or_group(&[sib, id]);
                subtree_roots.push(sib);
                subtree_roots.push(id);
            }
        }
        ids.push(id);
    }
    // OR-branch members are existence checks: force their subtrees (as
    // they exist at the end of construction) to non-return.
    let snapshot = b.clone().build();
    for &r in &subtree_roots {
        let mut stack = vec![r];
        while let Some(q) = stack.pop() {
            b.role(q, Role::NonReturn);
            stack.extend(snapshot.children(q).iter().copied());
        }
    }
    b.build()
}

fn map_role(r: u8) -> Role {
    match r {
        0 => Role::Return,
        1 => Role::NonReturn,
        _ => Role::GroupReturn,
    }
}

fn query_strategy() -> impl Strategy<Value = Gtp> {
    (
        prop::collection::vec(node_spec(), 1..6),
        any::<bool>(),
    )
        .prop_map(|(specs, rooted)| build_query(specs, rooted))
}

fn doc_strategy() -> impl Strategy<Value = Document> {
    (1usize..60, 1usize..4, 2u32..10, 0u32..100, any::<u64>()).prop_map(
        |(nodes, alphabet, max_depth, depth_bias, seed)| {
            generate_random_tree(&RandomTreeConfig {
                nodes,
                alphabet,
                max_depth,
                depth_bias,
                seed,
                text_vocab: 0,
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Exact equality with the oracle, both with and without the §3.5
    /// existence optimization; plus structural invariants.
    #[test]
    fn twig2stack_equals_oracle(doc in doc_strategy(), gtp in query_strategy()) {
        let expected = naive_evaluate(&doc, &gtp);
        prop_assert!(expected.is_duplicate_free());
        for existence_opt in [false, true] {
            let (tm, stats) = match_document(&doc, &gtp, MatchOptions { existence_opt });
            tm.check_invariants();
            let got = enumerate(&tm);
            prop_assert_eq!(
                &got, &expected,
                "existence_opt={} doc={} query={}",
                existence_opt, write(&doc, Indent::None), gtp
            );
            prop_assert!(stats.peak_bytes >= stats.final_bytes || stats.peak_bytes == 0);
        }
    }

    /// The early-enumeration hybrid (paper §4.4) produces exactly the same
    /// rows, in the same order, whenever the query shape supports it.
    #[test]
    fn early_mode_equals_oracle(doc in doc_strategy(), gtp in query_strategy()) {
        use twig2stack::evaluate_early;
        let expected = naive_evaluate(&doc, &gtp);
        for existence_opt in [false, true] {
            match evaluate_early(&doc, &gtp, MatchOptions { existence_opt }) {
                Ok((got, stats)) => {
                    prop_assert_eq!(
                        &got, &expected,
                        "existence_opt={} doc={} query={}",
                        existence_opt, write(&doc, Indent::None), gtp
                    );
                    prop_assert_eq!(stats.rows, expected.len());
                }
                Err(_) => {
                    // Unsupported shapes must involve a group or produce no
                    // output; plain all-return twigs always run early.
                    prop_assert!(
                        gtp.iter().any(|q| gtp.role(q) != gtpquery::Role::Return),
                        "all-return query rejected: {}", gtp
                    );
                }
            }
        }
    }

    /// Combinatorial counting agrees with materialized enumeration.
    #[test]
    fn count_equals_enumeration(doc in doc_strategy(), gtp in query_strategy()) {
        use twig2stack::{count_results, enumerate};
        let (tm, _) = match_document(&doc, &gtp, MatchOptions::default());
        prop_assert_eq!(
            count_results(&tm),
            enumerate(&tm).len() as u64,
            "doc={} query={}", write(&doc, Indent::None), gtp
        );
    }

    /// The streaming entry point agrees with the DOM path.
    #[test]
    fn streaming_equals_dom(doc in doc_strategy(), gtp in query_strategy()) {
        let xml = write(&doc, Indent::None);
        let expected = naive_evaluate(&doc, &gtp);
        let (got, _) = evaluate_streaming(&xml, &gtp, MatchOptions::default()).unwrap();
        prop_assert_eq!(&got, &expected, "doc={} query={}", xml, gtp);
    }

    /// Theorem 1: an element is pushed into HS[E] iff it satisfies the
    /// sub-twig rooted at E.
    #[test]
    fn theorem1_holds(doc in doc_strategy(), gtp in query_strategy()) {
        use twigbaselines::SatTable;
        let (tm, _) = match_document(&doc, &gtp, MatchOptions { existence_opt: false });
        let sat = SatTable::compute(&doc, &gtp);
        let mut locs = Vec::new();
        for q in gtp.iter() {
            locs.clear();
            for &r in tm.stack(q).roots() {
                tm.stack(q).tree_elements_into(r, &mut locs);
            }
            let mut got: Vec<xmldom::NodeId> =
                locs.iter().map(|&loc| tm.stack(q).elem(loc).node).collect();
            got.sort_unstable();
            let mut expected = sat.matches(q);
            // A rooted query's root node only admits level-1 elements.
            if q == gtp.root() && gtp.is_rooted() {
                expected.retain(|&n| doc.region(n).level == 1);
            }
            prop_assert_eq!(got, expected, "query node {} of {}", q, gtp);
        }
    }
}
