//! Differential check of the observability counters: the parallel
//! partitioned evaluator must report exactly the serial counters for
//! every work-proportional metric. `chunks`/`fallbacks` are excluded by
//! construction (they describe the execution strategy, not the work).
//!
//! This test forces the `twigobs/enabled` feature through core's
//! dev-dependencies, so it exercises the real recording layer even when
//! the workspace default leaves obs off.

use gtpquery::parse_twig;
use twig2stack::{enumerate, match_document, match_document_parallel, MatchOptions};
use twigobs::Counter;
use xmldom::parse;

/// Several records under one root, with matches crossing none of the
/// chunk boundaries and spine elements (`a`) matched by some queries —
/// the same corpus the parallel equivalence tests use.
const CORPUS: &str = "<a>\
    <a><b><c/></b></a>\
    <b/>\
    <b><c/><c/></b>\
    <d><b><c/></b><b/></d>\
    <a><a><b><c/><d/></b></a></a>\
    </a>";

const QUERIES: &[&str] = &[
    "//a/b[c]",
    "//a//b",
    "//a[b]//c",
    "//a/b[?c@]",
    "//a!/b[c!]",
    "//b[c][d]",
    "//a/a//b",
    "/a/b",
    "//*[c]",
];

/// The counters that must agree between serial and parallel runs.
const WORK_COUNTERS: [Counter; 5] = [
    Counter::ElementsScanned,
    Counter::StackPushes,
    Counter::Merges,
    Counter::EdgesCreated,
    Counter::ResultsEnumerated,
];

#[test]
#[allow(clippy::assertions_on_constants)] // guards the dev-dependency feature wiring
fn parallel_obs_counters_match_serial() {
    assert!(twigobs::ENABLED, "core tests force the obs recording layer");
    let doc = parse(CORPUS).unwrap();
    for q in QUERIES {
        let gtp = parse_twig(q).unwrap();

        let _ = twigobs::take();
        let (stm, _) = match_document(&doc, &gtp, MatchOptions::default());
        let _ = enumerate(&stm);
        let serial = twigobs::take();

        for threads in [2, 4, 8] {
            let (ptm, _) =
                match_document_parallel(&doc, &gtp, MatchOptions::default(), threads);
            let _ = enumerate(&ptm);
            let parallel = twigobs::take();
            for c in WORK_COUNTERS {
                assert_eq!(
                    parallel.get(c),
                    serial.get(c),
                    "query {q}, {threads} threads, counter {}",
                    c.name()
                );
            }
        }
    }
}

#[test]
fn serial_counters_are_plausible() {
    let doc = parse(CORPUS).unwrap();
    let gtp = parse_twig("//a/b[c]").unwrap();
    let _ = twigobs::take();
    let (tm, stats) = match_document(&doc, &gtp, MatchOptions::default());
    let rs = enumerate(&tm);
    let m = twigobs::take();
    // Every element close is one scan.
    assert_eq!(m.get(Counter::ElementsScanned), doc.len() as u64);
    // The obs push counter mirrors the matcher's own statistic.
    assert_eq!(m.get(Counter::StackPushes), stats.elements_pushed as u64);
    assert_eq!(m.get(Counter::EdgesCreated), stats.edges_created as u64);
    assert_eq!(m.get(Counter::ResultsEnumerated), rs.len() as u64);
    // Serial runs never partition or fall back.
    assert_eq!(m.get(Counter::Chunks), 0);
    assert_eq!(m.get(Counter::Fallbacks), 0);
}

#[test]
fn partitioned_runs_report_chunks() {
    let doc = parse(CORPUS).unwrap();
    let gtp = parse_twig("//a/b[c]").unwrap();
    let _ = twigobs::take();
    let _ = match_document_parallel(&doc, &gtp, MatchOptions::default(), 4);
    let m = twigobs::take();
    assert!(m.get(Counter::Chunks) >= 2, "corpus must partition");
    assert_eq!(m.get(Counter::Fallbacks), 0);
    // Partitioned matching opens the coordinator span plus one per task.
    assert!(m.span_entries(twigobs::Phase::Match) >= 1);
}

#[test]
fn serial_fallback_is_counted() {
    let doc = parse(CORPUS).unwrap();
    let gtp = parse_twig("//a/b[c]").unwrap();
    let _ = twigobs::take();
    let _ = match_document_parallel(&doc, &gtp, MatchOptions::default(), 1);
    let m = twigobs::take();
    assert_eq!(m.get(Counter::Fallbacks), 1);
    assert_eq!(m.get(Counter::Chunks), 0);
}
