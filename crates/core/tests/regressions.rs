//! Named regression tests promoted from `differential.proptest-regressions`.
//!
//! Each test pins one minimal (document, query) pair that a proptest run
//! once shrank a real failure down to. The seed file still replays them,
//! but a named test keeps the scenario meaningful if the seed file is
//! ever pruned and makes the covered behaviour greppable. The same pairs
//! (minus the builder-only one) live on as `.t2s` files under `corpus/`,
//! replayed by the fuzz harness — see DESIGN.md §8 for the convention.

use gtpquery::{parse_twig, Axis, Gtp, GtpBuilder, Role};
use twig2stack::{enumerate, evaluate_streaming, match_document, MatchOptions};
use twigbaselines::naive_evaluate;
use xmldom::{parse, write, Document, Indent};

/// Exact-equality differential check: Twig²Stack (existence optimization
/// off and on, plus the streaming entry point) against the naive oracle.
fn check(doc: &Document, gtp: &Gtp) {
    let expected = naive_evaluate(doc, gtp);
    assert!(expected.is_duplicate_free());
    for existence_opt in [false, true] {
        let (tm, _) = match_document(doc, gtp, MatchOptions { existence_opt });
        tm.check_invariants();
        let got = enumerate(&tm);
        assert_eq!(
            got,
            expected,
            "existence_opt={existence_opt} doc={} query={gtp}",
            write(doc, Indent::None)
        );
    }
    let (got, _) = evaluate_streaming(&write(doc, Indent::None), gtp, MatchOptions::default())
        .expect("round-tripped XML re-parses");
    assert_eq!(got, expected, "streaming, query={gtp}");
}

/// A group-return wildcard under a wildcard root once double-counted
/// rows on recursive same-label nestings.
#[test]
fn wildcard_group_under_wildcard_root() {
    let doc = parse("<a><a/></a>").unwrap();
    let gtp = parse_twig("//*[.//*@]").unwrap();
    check(&doc, &gtp);
}

/// An optional return node with a mandatory return child below it: the
/// missing-branch row must not invent a binding for the grandchild.
#[test]
fn mandatory_output_below_optional_edge() {
    let doc = parse("<a/>").unwrap();
    let gtp = parse_twig("//*[.//?a[.//a]]").unwrap();
    check(&doc, &gtp);
}

/// A non-return root whose only output is behind an optional edge, on a
/// document with recursive `a` nesting under sibling noise.
#[test]
fn non_return_root_with_optional_output() {
    let doc = parse("<b><a/><b/><b/><a><a><b/></a></a></b>").unwrap();
    let gtp = parse_twig("//a![.//?a]").unwrap();
    check(&doc, &gtp);
}

/// A *non-adjacent* OR-group: the two disjunctive existence branches are
/// separated by an unrelated optional sibling. This shape cannot be
/// written in the query syntax (the parser only groups adjacent `or`
/// alternatives), so the query is constructed with [`GtpBuilder`].
#[test]
fn non_adjacent_or_group_members() {
    let doc = parse("<a><a/></a>").unwrap();
    let mut b = GtpBuilder::new("a", false);
    let root = b.root();
    let m1 = b.add(root, "b", Axis::Descendant, false, Role::NonReturn);
    let _mid = b.add(root, "a", Axis::Descendant, true, Role::Return);
    let m2 = b.add(root, "a", Axis::Descendant, false, Role::NonReturn);
    b.same_or_group(&[m1, m2]);
    let gtp = b.build();
    check(&doc, &gtp);
}
