//! Pruned stream-driven evaluation: differential equality against the DOM
//! walk, and the observability contracts of the pruning pipeline (zero
//! stream reads on unsatisfiable queries, actual element savings on
//! selective ones). These tests live in the core crate because its
//! dev-dependencies enable the real `twigobs` recording layer.

use gtpquery::parse_twig;
use twig2stack::{evaluate, evaluate_indexed};
use twigobs::Counter;
use xmldom::parse;
use xmlindex::{ElementIndex, PruningPolicy};

/// Figure-1-style document plus recursion and some query-irrelevant bulk.
const DOC: &str = "<dblp>\
    <inproceedings><title>t1</title><author>a1</author><author>a2</author></inproceedings>\
    <article><title>t2</title><author>a3</author></article>\
    <inproceedings><title>t3</title></inproceedings>\
    <www><editor>e1</editor><cite><article><title>t4</title></article></cite></www>\
    </dblp>";

#[test]
fn pruned_equals_unpruned_across_queries() {
    let doc = parse(DOC).unwrap();
    let index = ElementIndex::build(&doc);
    let queries = [
        "//dblp/inproceedings[title]/author",
        "//article/title",
        "//dblp/*[title]",
        "//www//title",
        "//dblp/inproceedings[?author@]/title",
        "//cite//article!/title",
    ];
    for q in queries {
        let gtp = parse_twig(q).unwrap();
        let expected = evaluate(&doc, &gtp);
        let on = evaluate_indexed(&doc, &index, &gtp, PruningPolicy::Enabled);
        let off = evaluate_indexed(&doc, &index, &gtp, PruningPolicy::Disabled);
        assert_eq!(on, expected, "pruning on, query {q}");
        assert_eq!(off, expected, "pruning off, query {q}");
    }
}

#[test]
fn unsatisfiable_query_reads_zero_stream_elements() {
    let doc = parse(DOC).unwrap();
    // Index build happens outside the measured window.
    let index = ElementIndex::build(&doc);
    // Both labels exist, but no root-to-leaf path ever puts an editor
    // below an inproceedings: summary feasibility proves it.
    let gtp = parse_twig("//inproceedings/editor").unwrap();
    let _ = twigobs::take();
    let rs = evaluate_indexed(&doc, &index, &gtp, PruningPolicy::Enabled);
    let m = twigobs::take();
    assert!(rs.is_empty());
    assert_eq!(
        m.get(Counter::ElementsScanned),
        0,
        "infeasible query must not read any stream element"
    );
    assert_eq!(m.get(Counter::ElementsPruned), 0, "short-circuit, not a scan-and-drop");
}

#[test]
fn pruning_reduces_elements_scanned() {
    let doc = parse(DOC).unwrap();
    let index = ElementIndex::build(&doc);
    // `title` appears under four distinct paths; only the www//cite one
    // is feasible here, so pruning must drop the other title elements
    // (and the articles outside www).
    let gtp = parse_twig("//www//article/title").unwrap();

    let _ = twigobs::take();
    let on = evaluate_indexed(&doc, &index, &gtp, PruningPolicy::Enabled);
    let pruned_run = twigobs::take();

    let off = evaluate_indexed(&doc, &index, &gtp, PruningPolicy::Disabled);
    let full_run = twigobs::take();

    assert_eq!(on, off);
    assert_eq!(on.len(), 1);
    assert!(
        pruned_run.get(Counter::ElementsScanned) < full_run.get(Counter::ElementsScanned),
        "pruned run must read fewer elements ({} vs {})",
        pruned_run.get(Counter::ElementsScanned),
        full_run.get(Counter::ElementsScanned)
    );
    assert!(
        pruned_run.get(Counter::ElementsPruned) > 0,
        "the dropped elements must be accounted as pruned"
    );
}
