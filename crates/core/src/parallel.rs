//! Parallel partitioned evaluation.
//!
//! Twig²Stack's bottom-up pass is a single post-order scan, but its state
//! is *regional*: processing an element only ever touches stack trees
//! whose regions lie inside it (`merge_check` / `push` walk roots back
//! until `right < e.left`). Two disjoint subtrees therefore never interact
//! — all cross-subtree work happens at their common ancestors. That makes
//! the following partitioned evaluation exactly equivalent to the serial
//! algorithm:
//!
//! 1. **Partition** the document into *chunks*: independent subtrees
//!    (initially the children of the root, refined one level deeper while
//!    a single chunk holds more than half the document). Every element not
//!    inside a chunk is on the **spine** — the ancestors of the cut.
//! 2. **Workers** (one [`Matcher`] per task, a run of adjacent sibling
//!    chunks) process their chunks' events in document order. Within a
//!    task the matcher state is exactly the serial state restricted to
//!    those chunks.
//! 3. **Spine replay** on the calling thread walks the spine in post-order
//!    and, at each chunk's document position, *splices* the finished chunk
//!    encoding into the main matcher's stacks (arena append + edge-id
//!    remap — no re-matching), then closes spine elements with the
//!    ordinary [`Matcher::on_element_close`]. Splices and spine closes
//!    interleave in document order, so every spine merge sees exactly the
//!    root trees the serial run would see.
//!
//! Queries for which partitioning cannot help fall back to the serial
//! path (see [`FallbackReason`]); correctness never depends on the
//! partition heuristic, only load balance does.
//!
//! Peak memory ([`MatchStats::peak_bytes`]) is the **true concurrent
//! peak**: workers and the spine replay post live-byte deltas to one
//! shared counter and the reported peak is the maximum that counter ever
//! reached — not a sum of per-worker peaks (which overstates) nor their
//! max (which understates the serial-equivalent figure).

use crate::context::EvalContext;
use crate::enumerate::enumerate;
use crate::matcher::{match_document, MatchOptions, MatchStats, Matcher, TwigMatch};
use gtpquery::{Gtp, QueryAnalysis, ResultSet};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use xmldom::{DocEvents, Document, Event, NodeId};

/// Why a document/query/thread-count combination runs serially.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// Fewer than two worker threads requested.
    SingleThread,
    /// The partitioner found fewer than two independent chunks (tiny or
    /// path-shaped document).
    TooFewChunks,
    /// Query analysis says chunk workers would have no useful work.
    Query(gtpquery::ParallelFallback),
}

/// How [`evaluate_parallel`] will process a document/query pair — exposed
/// so tests (and tuning) can observe partitioning decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelPlan {
    /// Serial fallback, with the reason.
    Serial(FallbackReason),
    /// Partitioned execution.
    Partitioned {
        /// Worker threads that will be spawned (≤ requested).
        threads: usize,
        /// Independent chunk subtrees.
        chunks: usize,
        /// Worker tasks (runs of adjacent sibling chunks).
        tasks: usize,
    },
}

/// Subtree weight proxy: the region span covers two tag positions per
/// contained element, so it is proportional to subtree size without a
/// traversal.
fn weight(doc: &Document, n: NodeId) -> u64 {
    let r = doc.region(n);
    (r.right - r.left) as u64
}

/// Cut the document into independent chunk subtrees, in document order.
///
/// Start from the children of the root; while some chunk is heavier than
/// `total / (2 × threads)` — too coarse to balance across the requested
/// workers — replace the heaviest such refinable chunk with its children
/// (its root joins the spine). This gives per-record parallelism both for
/// flat corpora (DBLP: every record is a root child) and for nested ones
/// (XMark: `site` has few children, and for auction queries nearly all
/// the work hides below the single `open_auctions` container).
fn partition(doc: &Document, threads: usize) -> Vec<NodeId> {
    if doc.is_empty() {
        return Vec::new();
    }
    let max_chunks = threads.saturating_mul(32).min(4096);
    let mut chunks: Vec<NodeId> = doc.children(doc.root()).collect();
    while chunks.len() < max_chunks {
        let total: u64 = chunks.iter().map(|&c| weight(doc, c)).sum();
        let target = (total / (2 * threads as u64)).max(1);
        // The heaviest chunk that is both too coarse and refinable (leaves
        // heavier than the target just stay — text-heavy records).
        let Some((i, _)) = chunks
            .iter()
            .enumerate()
            .filter(|&(_, &c)| weight(doc, c) > target && doc.first_child(c).is_some())
            .max_by_key(|&(_, &c)| weight(doc, c))
        else {
            break;
        };
        let cmax = chunks[i];
        // Children occupy the replaced chunk's document-order position.
        chunks.splice(i..=i, doc.children(cmax));
    }
    chunks
}

/// Group chunks into worker tasks: runs of *adjacent* sibling chunks
/// (nothing — in particular no spine element — between them), capped at
/// roughly `1 / (3 × threads)` of the total weight so work can be stolen
/// evenly. Adjacency is what lets one matcher process a whole run and
/// still be spliced at a single document position.
fn build_tasks(doc: &Document, chunks: &[NodeId], threads: usize) -> Vec<Range<usize>> {
    let total: u64 = chunks.iter().map(|&c| weight(doc, c)).sum();
    let target = (total / (threads as u64 * 3).max(1)).max(1);
    let mut tasks = Vec::new();
    let mut start = 0;
    let mut acc = 0u64;
    for i in 0..chunks.len() {
        acc += weight(doc, chunks[i]);
        let adjacent_next =
            i + 1 < chunks.len() && doc.next_sibling(chunks[i]) == Some(chunks[i + 1]);
        if acc >= target || !adjacent_next {
            tasks.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    tasks
}

/// Chunk roots, adjacent-run tasks over them, and the worker count.
type Plan = (Vec<NodeId>, Vec<Range<usize>>, usize);

fn make_plan(doc: &Document, gtp: &Gtp, threads: usize) -> Result<Plan, FallbackReason> {
    if threads < 2 {
        return Err(FallbackReason::SingleThread);
    }
    if let Some(r) = QueryAnalysis::new(gtp).parallel_fallback() {
        return Err(FallbackReason::Query(r));
    }
    let chunks = partition(doc, threads);
    if chunks.len() < 2 {
        return Err(FallbackReason::TooFewChunks);
    }
    let tasks = build_tasks(doc, &chunks, threads);
    let workers = threads.min(tasks.len());
    Ok((chunks, tasks, workers))
}

/// The execution plan [`evaluate_parallel`] would use, without running it.
pub fn parallel_plan(doc: &Document, gtp: &Gtp, threads: usize) -> ParallelPlan {
    match make_plan(doc, gtp, threads) {
        Err(reason) => ParallelPlan::Serial(reason),
        Ok((chunks, tasks, workers)) => ParallelPlan::Partitioned {
            threads: workers,
            chunks: chunks.len(),
            tasks: tasks.len(),
        },
    }
}

/// Post a live-bytes delta to the shared concurrent-memory counter and
/// fold the new total into the peak. Deltas can be negative (existence
/// truncation, §3.5); wrapping two's-complement arithmetic makes the
/// shared sum exact regardless of interleaving.
fn post_delta(current: &AtomicUsize, peak: &AtomicUsize, prev: &mut usize, now: usize) {
    let delta = now.wrapping_sub(*prev);
    let cur = current.fetch_add(delta, Ordering::Relaxed).wrapping_add(delta);
    peak.fetch_max(cur, Ordering::Relaxed);
    *prev = now;
}

/// [`match_document`] over partitioned chunks on `threads` worker threads.
///
/// Exactly equivalent to the serial matcher — same pushed elements, same
/// result edges, same enumeration — with `peak_bytes` reporting the true
/// concurrent peak across all threads. Falls back to the serial path when
/// [`parallel_plan`] says partitioning cannot help.
pub fn match_document_parallel<'g>(
    doc: &'g Document,
    gtp: &'g Gtp,
    options: MatchOptions,
    threads: usize,
) -> (TwigMatch<'g>, MatchStats) {
    let (chunks, tasks, workers) = match make_plan(doc, gtp, threads) {
        Ok(plan) => plan,
        Err(_) => {
            twigobs::bump(twigobs::Counter::Fallbacks);
            return match_document(doc, gtp, options);
        }
    };
    // Opened only on the partitioned path: the serial fallback above is
    // timed by `match_document`'s own span.
    let _span = twigobs::span(twigobs::Phase::Match);
    twigobs::add(twigobs::Counter::Chunks, chunks.len() as u64);

    let current = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);
    let next_task = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, TwigMatch<'g>, MatchStats, twigobs::Metrics)>();

    crossbeam::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let (current, peak, next_task) = (&current, &peak, &next_task);
            let (chunks, tasks) = (&chunks, &tasks);
            s.spawn(move |_| {
                let mut ctx = EvalContext::new();
                loop {
                    let i = next_task.fetch_add(1, Ordering::Relaxed);
                    let Some(task) = tasks.get(i) else { break };
                    let span = twigobs::span(twigobs::Phase::Match);
                    let mut m = Matcher::new_in(gtp, doc.labels(), options, &mut ctx)
                        .with_text_source(doc);
                    let mut prev = 0usize;
                    for &chunk in &chunks[task.clone()] {
                        for ev in DocEvents::subtree(doc, chunk) {
                            if let Event::End { elem, label, region } = ev {
                                m.on_element_close(elem, label, region);
                                post_delta(current, peak, &mut prev, m.live_bytes());
                            }
                        }
                    }
                    let (tm, stats) = m.finish_into(&mut ctx);
                    drop(span);
                    // The encoding's bytes stay live (counted in `current`)
                    // until the spine replay takes ownership of them. The
                    // worker's thread-local obs metrics travel with the
                    // result so the coordinator can fold them in.
                    tx.send((i, tm, stats, twigobs::take()))
                        .expect("main thread receives");
                }
            });
        }
    })
    .expect("worker thread panicked");
    drop(tx);

    let mut slots: Vec<Option<(TwigMatch<'g>, MatchStats)>> =
        (0..tasks.len()).map(|_| None).collect();
    for (i, tm, stats, metrics) in rx {
        twigobs::absorb(&metrics);
        slots[i] = Some((tm, stats));
    }

    // Spine replay: post-order over the spine only. Chunks are met in
    // document order; at the first chunk of each task, splice the whole
    // task's encoding (ownership of its bytes transfers — no delta).
    let mut ctx = EvalContext::new();
    let mut m = Matcher::new_in(gtp, doc.labels(), options, &mut ctx).with_text_source(doc);
    let mut prev = 0usize;
    let mut next_chunk = 0usize;
    let mut next_splice = 0usize; // task whose first chunk splices next
    let root = doc.root();
    let mut stack: Vec<(NodeId, Option<NodeId>)> = vec![(root, doc.first_child(root))];
    while let Some(&mut (node, ref mut child)) = stack.last_mut() {
        if let Some(c) = *child {
            *child = doc.next_sibling(c);
            if next_chunk < chunks.len() && chunks[next_chunk] == c {
                if next_splice < tasks.len() && tasks[next_splice].start == next_chunk {
                    let (tm, stats) = slots[next_splice].take().expect("task result");
                    let _splice_span = twigobs::span(twigobs::Phase::Splice);
                    m.splice(tm, &stats);
                    prev = m.live_bytes();
                    next_splice += 1;
                }
                next_chunk += 1;
            } else {
                stack.push((c, doc.first_child(c)));
            }
        } else {
            // Spine elements are closed directly (no `DocEvents` producer
            // bumps for them), so count them here: serial and partitioned
            // runs then agree on `elements_scanned`.
            twigobs::bump(twigobs::Counter::ElementsScanned);
            m.on_element_close(node, doc.label(node), doc.region(node));
            post_delta(&current, &peak, &mut prev, m.live_bytes());
            stack.pop();
        }
    }
    debug_assert_eq!(next_chunk, chunks.len(), "replay must visit every chunk");

    let (tm, mut stats) = m.finish_into(&mut ctx);
    stats.peak_bytes = peak.load(Ordering::Relaxed);
    (tm, stats)
}

/// [`crate::evaluate`] on `threads` worker threads: partition, match
/// chunks in parallel, splice, enumerate. Results are identical to the
/// serial [`crate::evaluate`] (duplicate-free, document order).
///
/// ```
/// use gtpquery::parse_twig;
/// use twig2stack::{evaluate, evaluate_parallel};
/// use xmldom::parse;
///
/// let doc = parse("<dblp><article><author/></article><article/></dblp>").unwrap();
/// let gtp = parse_twig("//article[author]").unwrap();
/// assert_eq!(evaluate_parallel(&doc, &gtp, 4), evaluate(&doc, &gtp));
/// ```
pub fn evaluate_parallel(doc: &Document, gtp: &Gtp, threads: usize) -> ResultSet {
    let (tm, _) = match_document_parallel(doc, gtp, MatchOptions::default(), threads);
    enumerate(&tm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::count_results;
    use crate::evaluate;
    use gtpquery::{parse_twig, ParallelFallback};
    use xmldom::parse;

    /// Several records under one root, with matches crossing none of the
    /// chunk boundaries and spine elements (`a`) matched by some queries.
    const CORPUS: &str = "<a>\
        <a><b><c/></b></a>\
        <b/>\
        <b><c/><c/></b>\
        <d><b><c/></b><b/></d>\
        <a><a><b><c/><d/></b></a></a>\
        </a>";

    const QUERIES: &[&str] = &[
        "//a/b[c]",
        "//a//b",
        "//a[b]//c",
        "//a/b[?c@]",
        "//a!/b[c!]",
        "//b[c][d]",
        "//a/a//b",
        "/a/b",
        "//*[c]",
    ];

    #[test]
    fn parallel_matches_serial_on_fixed_corpus() {
        let doc = parse(CORPUS).unwrap();
        for q in QUERIES {
            let gtp = parse_twig(q).unwrap();
            for threads in [2, 3, 4, 8] {
                let rs = evaluate_parallel(&doc, &gtp, threads);
                assert_eq!(rs, evaluate(&doc, &gtp), "query {q}, {threads} threads");
            }
        }
    }

    #[test]
    fn parallel_counters_match_serial() {
        let doc = parse(CORPUS).unwrap();
        for q in QUERIES {
            let gtp = parse_twig(q).unwrap();
            let (stm, ss) = match_document(&doc, &gtp, MatchOptions::default());
            let (ptm, ps) = match_document_parallel(&doc, &gtp, MatchOptions::default(), 4);
            ptm.check_invariants();
            assert_eq!(ps.elements_pushed, ss.elements_pushed, "{q}");
            assert_eq!(ps.elements_considered, ss.elements_considered, "{q}");
            assert_eq!(ps.edges_created, ss.edges_created, "{q}");
            assert_eq!(ps.final_bytes, ss.final_bytes, "{q}");
            assert_eq!(ptm.root_match_count(), stm.root_match_count(), "{q}");
            assert_eq!(count_results(&ptm), count_results(&stm), "{q}");
            // The concurrent peak can exceed the serial peak only by what
            // is simultaneously live — never below the final live bytes.
            assert!(ps.peak_bytes >= ps.final_bytes, "{q}");
        }
    }

    #[test]
    fn rooted_single_node_query_takes_serial_fallback() {
        let doc = parse("<dblp><article/><article/></dblp>").unwrap();
        let gtp = parse_twig("/dblp").unwrap();
        assert_eq!(
            parallel_plan(&doc, &gtp, 4),
            ParallelPlan::Serial(FallbackReason::Query(ParallelFallback::RootedSingleNode))
        );
        assert_eq!(evaluate_parallel(&doc, &gtp, 4), evaluate(&doc, &gtp));
    }

    #[test]
    fn degenerate_inputs_take_serial_fallback() {
        let doc = parse(CORPUS).unwrap();
        let gtp = parse_twig("//a/b").unwrap();
        assert_eq!(
            parallel_plan(&doc, &gtp, 1),
            ParallelPlan::Serial(FallbackReason::SingleThread)
        );
        let tiny = parse("<a><b/></a>").unwrap();
        assert_eq!(
            parallel_plan(&tiny, &gtp, 4),
            ParallelPlan::Serial(FallbackReason::TooFewChunks)
        );
        // A path-shaped document has no sibling cut anywhere.
        let path = parse("<a><b><c><d/></c></b></a>").unwrap();
        assert_eq!(
            parallel_plan(&path, &gtp, 4),
            ParallelPlan::Serial(FallbackReason::TooFewChunks)
        );
        // The fallbacks still answer correctly.
        assert_eq!(evaluate_parallel(&doc, &gtp, 1), evaluate(&doc, &gtp));
        assert_eq!(evaluate_parallel(&tiny, &gtp, 4), evaluate(&tiny, &gtp));
        assert_eq!(evaluate_parallel(&path, &gtp, 4), evaluate(&path, &gtp));
    }

    #[test]
    fn partitioner_refines_below_a_dominant_child() {
        // XMark-like shape: the root's single heavy child must not become
        // one giant chunk; the cut descends to its children.
        let doc = parse(
            "<site><regions>\
             <item><name/></item><item><name/></item>\
             <item><name/></item><item><name/></item>\
             </regions></site>",
        )
        .unwrap();
        let gtp = parse_twig("//item[name]").unwrap();
        match parallel_plan(&doc, &gtp, 2) {
            ParallelPlan::Partitioned { chunks, .. } => assert_eq!(chunks, 4),
            p => panic!("expected partitioned plan, got {p:?}"),
        }
        assert_eq!(evaluate_parallel(&doc, &gtp, 2), evaluate(&doc, &gtp));
    }

    #[test]
    fn matches_spanning_spine_and_chunks() {
        // The query's root matches only the document root (spine), its
        // children live in different chunks: every cross-boundary edge
        // must survive splicing and remapping.
        let doc = parse("<r><x><k/></x><y><k/></y><x/><y><k/><k/></y></r>").unwrap();
        for q in ["//r[x]//k", "/r/x", "//r[x][y]//k", "//r//k"] {
            let gtp = parse_twig(q).unwrap();
            assert_eq!(evaluate_parallel(&doc, &gtp, 4), evaluate(&doc, &gtp), "{q}");
        }
    }

    #[test]
    fn value_predicates_cross_threads() {
        let doc = parse(
            "<lib><book><year>2006</year></book><book><year>1999</year></book>\
             <book><year>2006</year></book></lib>",
        )
        .unwrap();
        let gtp = parse_twig("//book[year='2006']").unwrap();
        assert_eq!(evaluate_parallel(&doc, &gtp, 3), evaluate(&doc, &gtp));
        assert_eq!(evaluate_parallel(&doc, &gtp, 3).len(), 2);
    }
}
