//! SOT — *sequence of trees* (paper §4.1).
//!
//! Enumeration carries, per query node, an ordered forest of matching
//! elements whose tree structure records their AD relationships: trees are
//! disjoint and in document order, and within a tree each node's children
//! are its (structurally) nearest enclosed matches. Maintaining this
//! structure is what lets `computeTotalEffects` suppress duplicates (AD:
//! only roots matter) and repair order (PC: the merge walk of Figure 10)
//! without sorting.
//!
//! SOTs are produced from hierarchical stacks: a stack tree *is* an SOT
//! once flattened — stack tops are ancestors of everything below and of
//! all descendant stacks.

use crate::hstack::{HierStack, SId};
use xmldom::{NodeId, Region};

/// One element in an SOT with its nested matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SotNode {
    /// Document node id.
    pub node: NodeId,
    /// Region encoding (drives the order/containment logic).
    pub region: Region,
    /// Location in the owning query node's hierarchical stack — used to
    /// follow this element's result edges during enumeration.
    pub loc: (SId, u32),
    /// Nested matches in document order.
    pub children: Vec<SotNode>,
}

impl SotNode {
    /// This node's matches in pre-order (document order), self first.
    pub fn preorder(&self) -> Vec<&SotNode> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect<'a>(&'a self, out: &mut Vec<&'a SotNode>) {
        out.push(self);
        for c in &self.children {
            c.collect(out);
        }
    }
}

/// A sequence of disjoint trees in document order.
pub type Sot = Vec<SotNode>;

/// All elements of an SOT in pre-order (document order).
pub fn sot_preorder(sot: &Sot) -> Vec<&SotNode> {
    let mut out = Vec::new();
    for t in sot {
        t.collect(&mut out);
    }
    out
}

/// Convert the stack tree rooted at `root` into an SOT forest.
///
/// The result is a forest (not a single tree) exactly when the root stack
/// holds no element (a merge-created root).
pub fn sot_of_stack_tree(hs: &HierStack, root: SId) -> Sot {
    sot_of_stack_tree_upto(hs, root, hs.node(root).elems.len() as u32)
}

/// Like [`sot_of_stack_tree`], but covering only the bottom `upto`
/// elements of the root stack — the expansion of an AD edge, whose
/// coverage was frozen when the edge was created (elements pushed onto the
/// root stack later are ancestors of the edge source, not descendants).
pub fn sot_of_stack_tree_upto(hs: &HierStack, root: SId, upto: u32) -> Sot {
    let snode = hs.node(root);
    // Child stacks' forests, already in document order. (Non-root stacks
    // are immutable, so their full contents always apply.)
    let mut below: Sot = Vec::new();
    for &c in &snode.children {
        below.extend(sot_of_stack_tree(hs, c));
    }
    // Wrap in the stack's elements bottom-up: the bottom element encloses
    // the child stacks; each higher element encloses the one below.
    for (i, e) in snode.elems.iter().take(upto as usize).enumerate() {
        below = vec![SotNode {
            node: e.node,
            region: e.region,
            loc: (root, i as u32),
            children: below,
        }];
    }
    below
}

/// The full SOT of a hierarchical stack (all its root trees).
pub fn sot_of_hierstack(hs: &HierStack) -> Sot {
    let mut out = Vec::new();
    for &r in hs.roots() {
        out.extend(sot_of_stack_tree(hs, r));
    }
    out
}

/// Canonicalize an arbitrary collection of SOT nodes into a well-formed
/// SOT: flatten, order by document position, deduplicate by element, and
/// rebuild the nesting structure from the region encodings.
///
/// Used by the early-enumeration mode to merge candidate sets that come
/// from different sources (open top-down stacks vs. closed hierarchical
/// stacks) whose trees may nest across each other.
pub fn rebuild_sot(forest: Vec<SotNode>) -> Sot {
    let mut flat: Vec<SotNode> = Vec::new();
    fn flatten(mut n: SotNode, out: &mut Vec<SotNode>) {
        let kids = std::mem::take(&mut n.children);
        out.push(n);
        for k in kids {
            flatten(k, out);
        }
    }
    for t in forest {
        flatten(t, &mut flat);
    }
    flat.sort_by_key(|n| n.region.left);
    flat.dedup_by(|a, b| a.node == b.node);
    // Stack-based forest reconstruction by containment.
    let mut roots: Sot = Vec::new();
    let mut chain: Vec<SotNode> = Vec::new();
    for n in flat {
        while let Some(top) = chain.last() {
            if top.region.is_ancestor_of(&n.region) {
                break;
            }
            let done = chain.pop().expect("non-empty chain");
            match chain.last_mut() {
                Some(parent) => parent.children.push(done),
                None => roots.push(done),
            }
        }
        chain.push(n);
    }
    while let Some(done) = chain.pop() {
        match chain.last_mut() {
            Some(parent) => parent.children.push(done),
            None => roots.push(done),
        }
    }
    roots
}

/// Validate SOT invariants in tests: document order, disjoint siblings,
/// children strictly inside parents.
#[cfg(test)]
pub fn check_sot(sot: &Sot) {
    for w in sot.windows(2) {
        assert!(
            w[0].region.right < w[1].region.left,
            "sibling trees must be disjoint and ordered"
        );
    }
    for t in sot {
        for c in &t.children {
            assert!(t.region.is_ancestor_of(&c.region));
        }
        check_sot(&t.children);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::EdgeLists;

    fn r(l: u32, rr: u32, lev: u32) -> Region {
        Region::new(l, rr, lev)
    }

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn stack_tree_to_sot_figure5() {
        // a3 [4,11], a4 [13,20], a2 [2,22]: SOT = a2(a3, a4).
        let mut hs = HierStack::new(false);
        hs.push(n(3), r(4, 11, 3), EdgeLists::empty());
        hs.push(n(4), r(13, 20, 3), EdgeLists::empty());
        hs.push(n(2), r(2, 22, 2), EdgeLists::empty());
        let sot = sot_of_hierstack(&hs);
        check_sot(&sot);
        assert_eq!(sot.len(), 1);
        assert_eq!(sot[0].node, n(2));
        let kids: Vec<NodeId> = sot[0].children.iter().map(|c| c.node).collect();
        assert_eq!(kids, vec![n(3), n(4)]);
        let pre: Vec<NodeId> = sot_preorder(&sot).iter().map(|s| s.node).collect();
        assert_eq!(pre, vec![n(2), n(3), n(4)]);
    }

    #[test]
    fn stacked_elements_chain() {
        // d3 [15,16] then d2 [14,17]: SOT = d2(d3).
        let mut hs = HierStack::new(false);
        hs.push(n(3), r(15, 16, 7), EdgeLists::empty());
        hs.push(n(2), r(14, 17, 6), EdgeLists::empty());
        let sot = sot_of_hierstack(&hs);
        check_sot(&sot);
        assert_eq!(sot.len(), 1);
        assert_eq!(sot[0].node, n(2));
        assert_eq!(sot[0].children.len(), 1);
        assert_eq!(sot[0].children[0].node, n(3));
    }

    #[test]
    fn forest_of_disjoint_trees() {
        let mut hs = HierStack::new(false);
        hs.push(n(1), r(2, 3, 2), EdgeLists::empty());
        hs.push(n(2), r(6, 7, 2), EdgeLists::empty());
        hs.push(n(3), r(10, 11, 2), EdgeLists::empty());
        let sot = sot_of_hierstack(&hs);
        check_sot(&sot);
        assert_eq!(sot.len(), 3);
        let ids: Vec<NodeId> = sot.iter().map(|t| t.node).collect();
        assert_eq!(ids, vec![n(1), n(2), n(3)]);
    }

    #[test]
    fn rebuild_from_shuffled_flat_nodes() {
        let mk = |i: usize, l: u32, rr: u32, lev: u32| SotNode {
            node: n(i),
            region: r(l, rr, lev),
            loc: (crate::hstack::SId(0), 0),
            children: Vec::new(),
        };
        // a[1,10] contains b[2,5] contains c[3,4]; d[6,7] also under a;
        // e[11,12] separate. Provide shuffled + duplicated.
        let nodes = vec![
            mk(4, 6, 7, 2),
            mk(1, 1, 10, 1),
            mk(3, 3, 4, 3),
            mk(2, 2, 5, 2),
            mk(5, 11, 12, 1),
            mk(3, 3, 4, 3), // duplicate
        ];
        let sot = rebuild_sot(nodes);
        check_sot(&sot);
        assert_eq!(sot.len(), 2);
        assert_eq!(sot[0].node, n(1));
        assert_eq!(sot[0].children.len(), 2); // b and d
        assert_eq!(sot[0].children[0].children.len(), 1); // c under b
        assert_eq!(sot[1].node, n(5));
    }

    #[test]
    fn rebuild_preserves_existing_structure() {
        let mut hs = HierStack::new(false);
        hs.push(n(3), r(4, 11, 3), EdgeLists::empty());
        hs.push(n(4), r(13, 20, 3), EdgeLists::empty());
        hs.push(n(2), r(2, 22, 2), EdgeLists::empty());
        let sot = sot_of_hierstack(&hs);
        let rebuilt = rebuild_sot(sot.clone());
        assert_eq!(rebuilt, sot);
    }

    #[test]
    fn empty_root_stack_yields_forest() {
        // Merge two trees via a step check (creates an empty merged root),
        // SOT of that tree is a 2-tree forest.
        let mut hs = HierStack::new(false);
        hs.push(n(1), r(4, 5, 3), EdgeLists::empty());
        hs.push(n(2), r(8, 9, 3), EdgeLists::empty());
        let mut edges = Vec::new();
        hs.merge_check(&r(2, 22, 2), gtpquery::Axis::Descendant, &mut edges);
        assert_eq!(hs.roots().len(), 1);
        let sot = sot_of_stack_tree(&hs, hs.roots()[0]);
        check_sot(&sot);
        assert_eq!(sot.len(), 2);
    }
}
