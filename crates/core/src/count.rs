//! Result counting without materialization.
//!
//! The hierarchical-stack encoding is a factorized representation of the
//! result set, so |results| can be computed combinatorially — products
//! over branches, sums over candidates — without ever building a tuple.
//! Per-element counts are memoized by stack location, making the whole
//! computation O(encoding size) even when the materialized output would
//! be quadratic or worse (e.g. XMark-Q1's bidder × reserve cross product
//! through the shared `open_auctions` container).
//!
//! The count is defined to equal `enumerate(tm).len()` exactly, including
//! null rows for unmatched optional branches and single rows for groups.

use crate::enumerate::compute_total_effects;
use crate::hstack::SId;
use crate::matcher::{MatchView, TwigMatch};
use crate::sot::{sot_preorder, sot_of_hierstack, Sot, SotNode};
use crate::edges::EdgeTarget;
use gtpquery::{Axis, QNodeId, Role};
use std::collections::HashMap;

/// Number of result tuples `enumerate` would produce, computed without
/// materializing them.
pub fn count_results(tm: &TwigMatch<'_>) -> u64 {
    let view = tm.view();
    let analysis = view.analysis;
    assert!(
        analysis.enumerable(),
        "query is not enumerable: {:?}",
        analysis.issues()
    );
    if analysis.columns().is_empty() {
        return 0; // boolean query — mirror enumerate()
    }
    let root = view.gtp.root();
    let esot = sot_of_hierstack(view.stack(root));
    if esot.is_empty() {
        return 0;
    }
    let mut memo = HashMap::new();
    count_node(&view, root, &esot, &mut memo)
}

type Memo = HashMap<(QNodeId, SId, u32), u64>;

/// Rows the sub-GTP rooted at `q` yields for candidate set `esot` —
/// mirrors `enum_node` case by case.
fn count_node(view: &MatchView<'_>, q: QNodeId, esot: &Sot, memo: &mut Memo) -> u64 {
    match view.gtp.role(q) {
        Role::Return => sot_preorder(esot)
            .iter()
            .map(|e| count_elem(view, q, e, memo))
            .sum(),
        Role::GroupReturn => 1,
        Role::NonReturn => {
            let (i, _) = view
                .gtp
                .children(q)
                .iter()
                .enumerate()
                .find(|&(_, &c)| view.analysis.has_output_below(c))
                .map(|(i, &c)| (i, c))
                .expect("non-return node on the output path has an output child");
            let msot = compute_total_effects(view, esot, q, i);
            if msot.is_empty() {
                return 1; // the null row
            }
            count_node(view, view.gtp.children(q)[i], &msot, memo)
        }
    }
}

/// Rows contributed by one concrete element of a return node: the product
/// of its branch counts (`enum_node`'s Cartesian product), with an empty
/// branch counting 1 (the null row substituted below optional steps).
fn count_elem(view: &MatchView<'_>, q: QNodeId, e: &SotNode, memo: &mut Memo) -> u64 {
    let key = (q, e.loc.0, e.loc.1);
    if let Some(&c) = memo.get(&key) {
        return c;
    }
    let mut product: u64 = 1;
    for (i, &m) in view.gtp.children(q).iter().enumerate() {
        if !view.analysis.has_output_below(m) {
            continue;
        }
        let msot = point_step_sot(view, e, q, i);
        let sub = count_node(view, m, &msot, memo);
        product = product.saturating_mul(sub.max(1));
    }
    memo.insert(key, product);
    product
}

/// Re-derive the per-element related SOT exactly as `enum_node` does
/// (paper Figure 11 line 9): PC edges are flat element lists, AD edges
/// expand to stack-tree SOTs.
fn point_step_sot(view: &MatchView<'_>, e: &SotNode, e_q: QNodeId, child_idx: usize) -> Sot {
    let m = view.gtp.children(e_q)[child_idx];
    let hs_m = view.stack(m);
    let elem = view.stack(e_q).elem(e.loc);
    let mut out = Vec::new();
    match view.gtp.edge(m).expect("child edge").axis {
        Axis::Child => {
            for t in elem.edges.for_child(child_idx) {
                match *t {
                    EdgeTarget::Element(st, idx) => {
                        let se = hs_m.elem((st, idx));
                        out.push(SotNode {
                            node: se.node,
                            region: se.region,
                            loc: (st, idx),
                            children: Vec::new(),
                        });
                    }
                    EdgeTarget::Subtree { .. } => unreachable!("PC stores element edges"),
                }
            }
        }
        Axis::Descendant => {
            for t in elem.edges.for_child(child_idx) {
                match *t {
                    EdgeTarget::Subtree { root, upto } => {
                        out.extend(crate::sot::sot_of_stack_tree_upto(hs_m, root, upto))
                    }
                    EdgeTarget::Element(..) => unreachable!("AD stores subtree edges"),
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate;
    use crate::matcher::{match_document, MatchOptions};
    use gtpquery::parse_twig;
    use xmldom::parse;

    fn check(xml: &str, query: &str) {
        let doc = parse(xml).unwrap();
        let gtp = parse_twig(query).unwrap();
        let (tm, _) = match_document(&doc, &gtp, MatchOptions::default());
        assert_eq!(
            count_results(&tm),
            enumerate(&tm).len() as u64,
            "query {query} on {xml}"
        );
    }

    const FIG1: &str = "<a><a><a><b><c/><d/></b></a><b><a><b><c/><d><d/></d></b></a><c/></b></a>\
                        <b><d/></b></a>";

    #[test]
    fn counts_match_enumeration() {
        for q in [
            "//a/b[//d][c]",
            "//a!/b![//d][c!]",
            "//b//d",
            "//a!/b",
            "//a/b[?c@]",
            "//b[?c][.//?d]",
            "/a/a/b",
        ] {
            check(FIG1, q);
        }
    }

    #[test]
    fn cross_product_counted_without_materialization() {
        // 3 x's × 3 y's under one p: 9 rows, counted as a product.
        let xml = "<p><x/><x/><x/><y/><y/><y/></p>";
        check(xml, "//p[x]/y");
        let doc = parse(xml).unwrap();
        let gtp = parse_twig("//p[x][y]").unwrap();
        let (tm, _) = match_document(&doc, &gtp, MatchOptions::default());
        assert_eq!(count_results(&tm), 9);
    }

    #[test]
    fn boolean_query_counts_zero() {
        let doc = parse("<a><b/></a>").unwrap();
        let gtp = parse_twig("//a!/b!").unwrap();
        let (tm, _) = match_document(&doc, &gtp, MatchOptions::default());
        assert_eq!(count_results(&tm), 0);
        assert!(tm.root_match_count() > 0); // existence is still visible
    }

    #[test]
    fn empty_result_counts_zero() {
        let doc = parse("<a><b/></a>").unwrap();
        let gtp = parse_twig("//a/c").unwrap();
        let (tm, _) = match_document(&doc, &gtp, MatchOptions::default());
        assert_eq!(count_results(&tm), 0);
    }
}
