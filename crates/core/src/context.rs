//! Reusable evaluation state.
//!
//! A [`Matcher`] allocates one [`HierStack`] arena per
//! query node plus scratch edge buffers; evaluating many queries (or many
//! document chunks, see [`crate::parallel`]) rebuilds all of it each time.
//! [`EvalContext`] pools both between evaluations: stacks are handed out
//! [`reset`](HierStack::reset) but with their arenas, spare-buffer pools,
//! and scratch capacity intact, so steady-state evaluation stops touching
//! the allocator for per-query setup.
//!
//! ```
//! use gtpquery::parse_twig;
//! use twig2stack::EvalContext;
//! use xmldom::parse;
//!
//! let doc = parse("<dblp><inproceedings><title/><author/></inproceedings></dblp>").unwrap();
//! let gtp = parse_twig("//dblp/inproceedings[title]/author").unwrap();
//! let mut ctx = EvalContext::new();
//! for _ in 0..3 {
//!     let results = ctx.evaluate(&doc, &gtp); // reuses buffers after round 1
//!     assert_eq!(results.len(), 1);
//! }
//! ```

use crate::edges::EdgeTarget;
use crate::enumerate::enumerate;
use crate::hstack::HierStack;
use crate::matcher::{MatchOptions, MatchStats, Matcher, TwigMatch};
use gtpquery::{Gtp, ResultSet};
use xmldom::{Document, Event};

/// A pool of matcher arenas and scratch buffers, reusable across queries,
/// documents, and chunks.
#[derive(Default)]
pub struct EvalContext {
    stacks: Vec<HierStack>,
    scratch: Vec<Vec<EdgeTarget>>,
}

impl EvalContext {
    /// An empty context. Pools fill on the first [`recycle`](Self::recycle).
    pub fn new() -> Self {
        EvalContext::default()
    }

    /// Hand out a hierarchical stack in the requested mode, reusing pooled
    /// capacity when available.
    pub(crate) fn take_stack(&mut self, existence_only: bool) -> HierStack {
        match self.stacks.pop() {
            Some(mut s) => {
                s.reset(existence_only);
                s
            }
            None => HierStack::new(existence_only),
        }
    }

    /// Hand out a cleared scratch edge buffer.
    pub(crate) fn take_scratch(&mut self) -> Vec<EdgeTarget> {
        let mut buf = self.scratch.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Return scratch buffers to the pool.
    pub(crate) fn put_scratch(&mut self, bufs: impl IntoIterator<Item = Vec<EdgeTarget>>) {
        self.scratch.extend(bufs);
    }

    /// Return a finished (and typically already-enumerated) encoding's
    /// arenas to the pool.
    pub fn recycle(&mut self, tm: TwigMatch<'_>) {
        self.stacks.extend(tm.into_stacks());
    }

    /// [`crate::match_document`], drawing arenas from this pool. Recycle
    /// the returned encoding with [`Self::recycle`] once done with it.
    pub fn match_document<'g>(
        &mut self,
        doc: &'g Document,
        gtp: &'g Gtp,
        options: MatchOptions,
    ) -> (TwigMatch<'g>, MatchStats) {
        let mut m = Matcher::new_in(gtp, doc.labels(), options, self).with_text_source(doc);
        for ev in xmldom::DocEvents::new(doc) {
            if let Event::End { elem, label, region } = ev {
                m.on_element_close(elem, label, region);
            }
        }
        m.finish_into(self)
    }

    /// [`crate::evaluate`], drawing from and recycling into this pool.
    pub fn evaluate(&mut self, doc: &Document, gtp: &Gtp) -> ResultSet {
        let (tm, _) = self.match_document(doc, gtp, MatchOptions::default());
        let rs = enumerate(&tm);
        self.recycle(tm);
        rs
    }

    /// Number of pooled stack arenas (diagnostics / tests).
    pub fn pooled_stacks(&self) -> usize {
        self.stacks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use gtpquery::parse_twig;
    use xmldom::parse;

    #[test]
    fn reuse_matches_fresh_evaluation() {
        let doc =
            parse("<a><a><b><c/></b></a><b/><b><c/><c/></b><d><b><c/></b></d></a>").unwrap();
        let mut ctx = EvalContext::new();
        for q in ["//a/b[c]", "//a//b", "//a[b]//c", "//d/b/c", "//a/b[?c@]"] {
            let gtp = parse_twig(q).unwrap();
            for round in 0..3 {
                assert_eq!(ctx.evaluate(&doc, &gtp), evaluate(&doc, &gtp), "{q} round {round}");
            }
        }
    }

    #[test]
    fn arenas_return_to_pool() {
        let doc = parse("<a><b/><b/></a>").unwrap();
        let g2 = parse_twig("//a/b").unwrap();
        let g3 = parse_twig("//a[b]//c").unwrap();
        let mut ctx = EvalContext::new();
        ctx.evaluate(&doc, &g2);
        assert_eq!(ctx.pooled_stacks(), 2);
        // A bigger query grows the pool; a smaller one leaves the rest.
        ctx.evaluate(&doc, &g3);
        assert_eq!(ctx.pooled_stacks(), 3);
        ctx.evaluate(&doc, &g2);
        assert_eq!(ctx.pooled_stacks(), 3);
    }

    #[test]
    fn mode_switch_between_reuses() {
        // The same pooled arena must serve existence-checking and full
        // queries alternately without leaking the previous mode.
        let doc = parse("<a><b><c/></b><b><c/></b></a>").unwrap();
        let full = parse_twig("//b[c]").unwrap(); // c returned
        let exist = parse_twig("//b!/c!").unwrap();
        let mut ctx = EvalContext::new();
        for _ in 0..2 {
            assert_eq!(ctx.evaluate(&doc, &full), evaluate(&doc, &full));
            assert_eq!(ctx.evaluate(&doc, &exist), evaluate(&doc, &exist));
        }
    }

    #[test]
    fn stats_are_per_evaluation() {
        let doc = parse("<a><b/><b/></a>").unwrap();
        let gtp = parse_twig("//a/b").unwrap();
        let mut ctx = EvalContext::new();
        let (tm1, s1) = ctx.match_document(&doc, &gtp, MatchOptions::default());
        ctx.recycle(tm1);
        let (tm2, s2) = ctx.match_document(&doc, &gtp, MatchOptions::default());
        assert_eq!(s1, s2, "pooled reuse must not inflate counters");
        assert_eq!(tm2.root_match_count(), 1);
        ctx.recycle(tm2);
    }
}
