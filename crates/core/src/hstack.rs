//! Hierarchical stacks — the paper's encoding structure (§3.2).
//!
//! One [`HierStack`] per query node holds an ordered forest of *stack
//! trees*; each tree node is a stack of document elements. Invariants
//! (maintained by construction, checked in debug builds):
//!
//! * within a stack, an element is an ancestor of every element below it
//!   (post-order processing pushes ancestors after descendants);
//! * every element in a stack is an ancestor of everything in the stack's
//!   descendant stacks;
//! * root trees are ordered by ascending `RightPos`, and a new (or newly
//!   merged) tree always has the largest `RightPos` seen so far, so order
//!   maintenance is O(1) (paper §3.2.2);
//! * a stack never gains children after creation — merging creates a *new*
//!   root over the merged trees (paper Figure 6), so `(stack id, element
//!   index)` references held by result edges stay valid forever.
//!
//! The **merge** operation implements paper Figure 6: walk root trees from
//! the largest `RightPos` down while they are descendants of the incoming
//! element, perform the query-step check against each tree's top element
//! (PC) or the whole tree (AD), record result edges, and fold the visited
//! trees under one new root.

use crate::edges::{EdgeLists, EdgeTarget};
use gtpquery::Axis;
use std::fmt;
use xmldom::{NodeId, Region};

/// Identifier of a stack (tree node) within one [`HierStack`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SId(pub(crate) u32);

impl SId {
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A document element held in a stack: identity, region, and its result
/// edges (one list per child query node).
#[derive(Debug, Clone)]
pub struct StackElem {
    /// Document node id.
    pub node: NodeId,
    /// Region encoding.
    pub region: Region,
    /// Result edges, indexed by child-query-node position.
    pub edges: EdgeLists,
}

/// One stack: a node of a stack tree.
#[derive(Debug, Clone)]
pub struct StackNode {
    /// Smallest `LeftPos` over this stack's elements and all descendants.
    pub left: u32,
    /// Largest `RightPos` over this stack's elements and all descendants.
    pub right: u32,
    /// Elements, bottom (deepest descendant) to top (highest ancestor).
    pub elems: Vec<StackElem>,
    /// Child stacks in ascending document order (ascending `RightPos`).
    pub children: Vec<SId>,
}

impl StackNode {
    /// The top element, if the stack is non-empty.
    pub fn top(&self) -> Option<&StackElem> {
        self.elems.last()
    }
}

/// Approximate heap bytes of one empty stack node (for Table 1 accounting).
const STACK_NODE_BYTES: usize = std::mem::size_of::<StackNode>();
/// Approximate heap bytes of one stacked element, excluding edges.
const ELEM_BYTES: usize = std::mem::size_of::<StackElem>();
/// Approximate heap bytes of one result edge.
pub(crate) const EDGE_BYTES: usize = std::mem::size_of::<EdgeTarget>();

/// The hierarchical stack of one query node.
#[derive(Debug, Clone, Default)]
pub struct HierStack {
    nodes: Vec<StackNode>,
    /// Root stack trees, ascending `RightPos`.
    roots: Vec<SId>,
    /// Existence-checking mode (paper §3.5): keep only each tree's root
    /// stack and its top element; receive no edges.
    existence_only: bool,
    /// Logical live bytes (drops in existence mode / cleanup are counted
    /// even though the arena retains slots).
    live_bytes: usize,
    /// Total elements ever pushed (statistics).
    pushed: usize,
    /// Recycled element buffers from cleared / truncated stack nodes, so
    /// hot-path node allocation reuses capacity instead of hitting the
    /// allocator (drawn on by [`Self::alloc_node`]).
    spare_elems: Vec<Vec<StackElem>>,
    /// Recycled child-list buffers, same purpose.
    spare_children: Vec<Vec<SId>>,
}

impl HierStack {
    /// New empty hierarchical stack. `existence_only` enables the paper's
    /// §3.5 truncation.
    pub fn new(existence_only: bool) -> Self {
        HierStack { existence_only, ..HierStack::default() }
    }

    /// Clear all state and switch mode, retaining arena and buffer-pool
    /// capacity for reuse (see [`crate::context::EvalContext`]).
    pub fn reset(&mut self, existence_only: bool) {
        self.clear();
        self.existence_only = existence_only;
        self.pushed = 0;
    }

    /// Whether §3.5 truncation is active.
    pub fn is_existence_only(&self) -> bool {
        self.existence_only
    }

    /// Root stack trees in ascending document order.
    pub fn roots(&self) -> &[SId] {
        &self.roots
    }

    /// Access a stack node.
    #[inline]
    pub fn node(&self, id: SId) -> &StackNode {
        &self.nodes[id.index()]
    }

    /// Total elements ever pushed.
    pub fn pushed(&self) -> usize {
        self.pushed
    }

    /// Number of arena slots (live and dead) — the id offset a spliced
    /// stack's nodes shift by.
    pub(crate) fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Logical live bytes held by this stack's structures.
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    /// True iff no tree exists (nothing ever matched, or cleaned up).
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Drop all trees (early result enumeration cleanup, paper §4.4).
    /// Node buffers go to the spare pools rather than the allocator, so a
    /// reused stack allocates nothing while re-growing to its former size.
    pub fn clear(&mut self) {
        for n in &mut self.nodes {
            let mut elems = std::mem::take(&mut n.elems);
            elems.clear();
            self.spare_elems.push(elems);
            let mut children = std::mem::take(&mut n.children);
            children.clear();
            self.spare_children.push(children);
        }
        self.nodes.clear();
        self.roots.clear();
        self.live_bytes = 0;
    }

    /// The paper's query-step check + merge (Figure 6).
    ///
    /// Walk the root trees that are descendants of `e` (from the largest
    /// `RightPos` down), check the `axis` step against each (top element
    /// for PC, whole tree for AD), append result edges to `edges_out`
    /// (unless this stack is existence-only), and merge the visited trees.
    /// Returns `true` iff at least one tree satisfied the step.
    pub fn merge_check(
        &mut self,
        e: &Region,
        axis: Axis,
        edges_out: &mut Vec<EdgeTarget>,
    ) -> bool {
        let mut satisfied = false;
        let first_desc = self.first_descendant_root(e);
        for i in first_desc..self.roots.len() {
            let st = self.roots[i];
            let snode = &self.nodes[st.index()];
            debug_assert!(
                e.left < snode.left && snode.right < e.right,
                "merged tree must lie inside the incoming element"
            );
            match axis {
                Axis::Child => {
                    if let Some(top) = snode.top() {
                        if top.region.level == e.level + 1 {
                            satisfied = true;
                            if !self.existence_only {
                                edges_out.push(EdgeTarget::element(
                                    st,
                                    (snode.elems.len() - 1) as u32,
                                ));
                            }
                        }
                    }
                }
                Axis::Descendant => {
                    satisfied = true;
                    if !self.existence_only {
                        edges_out.push(EdgeTarget::subtree(st, snode.elems.len() as u32));
                    }
                }
            }
        }
        self.merge_tail(first_desc);
        satisfied
    }

    /// Push `elem` (which must close after everything already present):
    /// merge its descendant trees and place it on top (paper
    /// `MatchOneNode` lines 6–7). Returns the element's location.
    pub fn push(&mut self, node: NodeId, region: Region, edges: EdgeLists) -> (SId, u32) {
        self.pushed += 1;
        twigobs::bump(twigobs::Counter::StackPushes);
        let first_desc = self.first_descendant_root(&region);
        self.merge_tail(first_desc);
        // After merging, at most one root tree is a descendant of `region`.
        let target = match self.roots.last().copied() {
            Some(st) if self.nodes[st.index()].right > region.left => st,
            _ => {
                let id = self.alloc_node(region.left, region.right);
                self.roots.push(id);
                id
            }
        };
        let edge_count: usize = edges.total_edges();
        self.live_bytes += ELEM_BYTES + edge_count * EDGE_BYTES;
        let tnode = &mut self.nodes[target.index()];
        tnode.left = tnode.left.min(region.left);
        tnode.right = tnode.right.max(region.right);
        if self.existence_only {
            // §3.5: only the top element is ever inspected.
            if let Some(prev) = tnode.elems.pop() {
                let prev_edges = prev.edges.total_edges();
                self.live_bytes -= ELEM_BYTES + prev_edges * EDGE_BYTES;
            }
        }
        tnode.elems.push(StackElem { node, region, edges });
        (target, (self.nodes[target.index()].elems.len() - 1) as u32)
    }

    /// Index of the first root (in the ascending roots list) that is a
    /// descendant of `e` — i.e. whose `RightPos > e.left`.
    fn first_descendant_root(&self, e: &Region) -> usize {
        // Roots are sorted by ascending right; scan back from the tail
        // (amortized O(1) per merged tree, as each tree merges only once).
        let mut i = self.roots.len();
        while i > 0 {
            let st = self.roots[i - 1];
            if self.nodes[st.index()].right < e.left {
                break;
            }
            i -= 1;
        }
        i
    }

    /// Fold `roots[first..]` into a single tree (no-op for 0 or 1 trees).
    fn merge_tail(&mut self, first: usize) {
        let count = self.roots.len() - first;
        if count < 2 {
            return;
        }
        twigobs::bump(twigobs::Counter::Merges);
        let mut children = self.spare_children.pop().unwrap_or_default();
        children.extend(self.roots.drain(first..));
        let left = children
            .iter()
            .map(|&c| self.nodes[c.index()].left)
            .min()
            .expect("non-empty merge set");
        let right = children
            .iter()
            .map(|&c| self.nodes[c.index()].right)
            .max()
            .expect("non-empty merge set");
        let merged = self.alloc_node(left, right);
        if self.existence_only {
            // §3.5: merged subtrees are no longer reachable by any future
            // parent/ancestor check; drop them.
            for &c in &children {
                self.live_bytes -= self.subtree_bytes(c);
                // Leave the arena slot in place (ids must stay stable) but
                // recycle its heap payload. Its child list is always empty
                // in existence mode (merges never assign children here).
                let mut elems = std::mem::take(&mut self.nodes[c.index()].elems);
                elems.clear();
                self.spare_elems.push(elems);
            }
            children.clear();
            self.spare_children.push(children);
        } else {
            let unused =
                std::mem::replace(&mut self.nodes[merged.index()].children, children);
            self.spare_children.push(unused);
        }
        self.roots.push(merged);
    }

    /// Append another stack's forest after this one (parallel chunk
    /// merge). All of `other`'s trees must lie strictly after every tree
    /// already here in document order — chunk subtrees are region-disjoint
    /// and processed in document order, so this holds by construction.
    ///
    /// `other`'s node ids shift up by this arena's current length;
    /// `child_offsets[i]` is the matching shift for the stack of the
    /// owning query node's `i`-th child, applied to each element's edge
    /// list `i`.
    pub(crate) fn splice(&mut self, other: HierStack, child_offsets: &[u32]) {
        debug_assert_eq!(
            self.existence_only, other.existence_only,
            "spliced stacks must agree on §3.5 truncation mode"
        );
        if let (Some(&last), Some(&first)) = (self.roots.last(), other.roots.first()) {
            debug_assert!(
                self.nodes[last.index()].right < other.nodes[first.index()].left,
                "spliced forest must follow the existing one in document order"
            );
        }
        let offset = self.nodes.len() as u32;
        for mut n in other.nodes {
            for c in &mut n.children {
                c.0 += offset;
            }
            for e in &mut n.elems {
                e.edges.remap(child_offsets);
            }
            self.nodes.push(n);
        }
        self.roots
            .extend(other.roots.into_iter().map(|r| SId(r.0 + offset)));
        self.live_bytes += other.live_bytes;
        self.pushed += other.pushed;
        self.spare_elems.extend(other.spare_elems);
        self.spare_children.extend(other.spare_children);
    }

    fn alloc_node(&mut self, left: u32, right: u32) -> SId {
        let id = SId(self.nodes.len() as u32);
        self.nodes.push(StackNode {
            left,
            right,
            elems: self.spare_elems.pop().unwrap_or_default(),
            children: self.spare_children.pop().unwrap_or_default(),
        });
        self.live_bytes += STACK_NODE_BYTES;
        id
    }

    fn subtree_bytes(&self, id: SId) -> usize {
        let n = &self.nodes[id.index()];
        let own = STACK_NODE_BYTES
            + n.elems
                .iter()
                .map(|e| ELEM_BYTES + e.edges.total_edges() * EDGE_BYTES)
                .sum::<usize>();
        own + n
            .children
            .iter()
            .map(|&c| self.subtree_bytes(c))
            .sum::<usize>()
    }

    /// All elements of the stack tree rooted at `id`, as `(stack, index)`
    /// pairs in **document order** (pre-order: tops first, then down the
    /// stack, then child trees), appended into a caller-owned buffer
    /// (which is not cleared) so repeated walks can reuse capacity.
    pub fn tree_elements_into(&self, id: SId, out: &mut Vec<(SId, u32)>) {
        self.collect_tree(id, out);
    }

    fn collect_tree(&self, id: SId, out: &mut Vec<(SId, u32)>) {
        let n = &self.nodes[id.index()];
        for i in (0..n.elems.len()).rev() {
            out.push((id, i as u32));
        }
        for &c in &n.children {
            self.collect_tree(c, out);
        }
    }

    /// The element at a location.
    #[inline]
    pub fn elem(&self, loc: (SId, u32)) -> &StackElem {
        &self.nodes[loc.0.index()].elems[loc.1 as usize]
    }

    /// Validate the §3.2 invariants (tests / debug only): stack nesting,
    /// child ordering, and region spans.
    pub fn check_invariants(&self) {
        for w in self.roots.windows(2) {
            let a = &self.nodes[w[0].index()];
            let b = &self.nodes[w[1].index()];
            assert!(a.right < b.left, "root trees must be disjoint and ordered");
        }
        for &r in &self.roots {
            self.check_node(r);
        }
    }

    fn check_node(&self, id: SId) {
        let n = &self.nodes[id.index()];
        // Elements nest bottom-up: each element is an ancestor of the one
        // below it.
        for w in n.elems.windows(2) {
            assert!(
                w[1].region.is_ancestor_of(&w[0].region),
                "stack elements must nest upward"
            );
        }
        // Every element spans all child stacks.
        for e in &n.elems {
            for &c in &n.children {
                let cn = &self.nodes[c.index()];
                assert!(
                    e.region.left < cn.left && cn.right < e.region.right,
                    "stack elements must contain descendant stacks"
                );
            }
        }
        for w in n.children.windows(2) {
            let a = &self.nodes[w[0].index()];
            let b = &self.nodes[w[1].index()];
            assert!(a.right < b.left, "child stacks must be ordered/disjoint");
        }
        assert!(n.left <= n.right);
        for &c in &n.children {
            let cn = &self.nodes[c.index()];
            assert!(n.left <= cn.left && cn.right <= n.right, "span must cover children");
            self.check_node(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::EdgeLists;

    fn r(l: u32, rr: u32, lev: u32) -> Region {
        Region::new(l, rr, lev)
    }

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    /// Paper Figure 5: visiting a3 [4,11], a4 [13,20] then a2 [2,22]
    /// builds one tree with a2 on the new merged root.
    fn push3(hs: &mut HierStack) {
        hs.push(n(3), r(4, 11, 3), EdgeLists::empty());
        hs.push(n(4), r(13, 20, 3), EdgeLists::empty());
        hs.push(n(2), r(2, 22, 2), EdgeLists::empty());
    }

    #[test]
    fn figure5_merge_on_push() {
        let mut hs = HierStack::new(false);
        push3(&mut hs);
        hs.check_invariants();
        assert_eq!(hs.roots().len(), 1);
        let root = hs.node(hs.roots()[0]);
        assert_eq!(root.elems.len(), 1); // a2 on the merged root
        assert_eq!(root.elems[0].node, n(2));
        assert_eq!(root.children.len(), 2); // a3's and a4's stacks
        assert_eq!((root.left, root.right), (2, 22));
        assert_eq!(hs.pushed(), 3);
    }

    #[test]
    fn unrelated_trees_stay_separate() {
        let mut hs = HierStack::new(false);
        hs.push(n(1), r(4, 11, 3), EdgeLists::empty());
        hs.push(n(2), r(13, 20, 3), EdgeLists::empty());
        hs.check_invariants();
        assert_eq!(hs.roots().len(), 2);
    }

    #[test]
    fn nested_push_stacks_on_top() {
        // d3 [15,16], then its ancestor d2 [14,17]: same stack.
        let mut hs = HierStack::new(false);
        hs.push(n(3), r(15, 16, 7), EdgeLists::empty());
        hs.push(n(2), r(14, 17, 6), EdgeLists::empty());
        hs.check_invariants();
        assert_eq!(hs.roots().len(), 1);
        let root = hs.node(hs.roots()[0]);
        assert_eq!(root.elems.len(), 2);
        assert_eq!(root.top().unwrap().node, n(2)); // ancestor on top
    }

    #[test]
    fn merge_check_ad_creates_subtree_edges() {
        let mut hs = HierStack::new(false);
        push3(&mut hs);
        let mut edges = Vec::new();
        // An ancestor of the whole forest checks an AD step.
        let sat = hs.merge_check(&r(1, 30, 1), Axis::Descendant, &mut edges);
        assert!(sat);
        assert_eq!(edges.len(), 1); // one (already merged) tree
        assert!(matches!(edges[0], EdgeTarget::Subtree { .. }));
    }

    #[test]
    fn merge_check_pc_checks_top_level() {
        let mut hs = HierStack::new(false);
        push3(&mut hs); // top of the single tree is a2 at level 2
        let mut edges = Vec::new();
        let sat = hs.merge_check(&r(1, 30, 1), Axis::Child, &mut edges);
        assert!(sat, "a2 at level 2 is a child of level-1 element");
        assert_eq!(edges.len(), 1);
        // A level-3 element cannot have a level-2 top as its child.
        let mut hs2 = HierStack::new(false);
        push3(&mut hs2);
        let mut edges2 = Vec::new();
        let sat2 = hs2.merge_check(&r(1, 30, 4), Axis::Child, &mut edges2);
        assert!(!sat2);
        assert!(edges2.is_empty());
    }

    #[test]
    fn merge_check_ignores_preceding_trees() {
        let mut hs = HierStack::new(false);
        hs.push(n(1), r(2, 3, 2), EdgeLists::empty());
        hs.push(n(2), r(6, 7, 2), EdgeLists::empty());
        let mut edges = Vec::new();
        // Element [5,8] contains only the second tree.
        let sat = hs.merge_check(&r(5, 8, 1), Axis::Child, &mut edges);
        assert!(sat);
        assert_eq!(edges.len(), 1);
        assert_eq!(hs.roots().len(), 2, "preceding tree untouched");
    }

    #[test]
    fn tree_elements_in_document_order() {
        let mut hs = HierStack::new(false);
        push3(&mut hs);
        let root = hs.roots()[0];
        let mut elems = Vec::new();
        hs.tree_elements_into(root, &mut elems);
        let ids: Vec<NodeId> = elems.iter().map(|&l| hs.elem(l).node).collect();
        assert_eq!(ids, vec![n(2), n(3), n(4)]); // pre-order: a2, a3, a4
        let lefts: Vec<u32> = elems.iter().map(|&l| hs.elem(l).region.left).collect();
        assert!(lefts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn existence_mode_truncates() {
        let mut hs = HierStack::new(true);
        push3(&mut hs);
        assert_eq!(hs.roots().len(), 1);
        let root = hs.node(hs.roots()[0]);
        assert_eq!(root.elems.len(), 1); // only a2 (top) retained
        assert!(root.children.is_empty(), "merged subtrees dropped");
        // Dropped subtrees reduce live bytes relative to full mode.
        let mut full = HierStack::new(false);
        push3(&mut full);
        assert!(hs.live_bytes() < full.live_bytes());
    }

    #[test]
    fn existence_mode_push_replaces_top() {
        let mut hs = HierStack::new(true);
        hs.push(n(3), r(15, 16, 7), EdgeLists::empty());
        hs.push(n(2), r(14, 17, 6), EdgeLists::empty());
        let root = hs.node(hs.roots()[0]);
        assert_eq!(root.elems.len(), 1);
        assert_eq!(root.top().unwrap().node, n(2));
    }

    #[test]
    fn existence_mode_ad_still_satisfied_with_empty_top() {
        let mut hs = HierStack::new(true);
        hs.push(n(3), r(4, 11, 3), EdgeLists::empty());
        hs.push(n(4), r(13, 20, 3), EdgeLists::empty());
        // A step check from [2,22] merges both trees (creating an empty
        // merged root in existence mode)...
        let mut edges = Vec::new();
        assert!(hs.merge_check(&r(2, 22, 2), Axis::Descendant, &mut edges));
        assert!(edges.is_empty(), "no edges to existence-checking nodes");
        // ... and a later AD check still sees the witness tree.
        let mut edges2 = Vec::new();
        assert!(hs.merge_check(&r(1, 30, 1), Axis::Descendant, &mut edges2));
        // But a PC check cannot match an empty top.
        let mut hs2 = HierStack::new(true);
        hs2.push(n(3), r(4, 11, 3), EdgeLists::empty());
        hs2.push(n(4), r(13, 20, 3), EdgeLists::empty());
        let mut e3 = Vec::new();
        hs2.merge_check(&r(2, 22, 2), Axis::Descendant, &mut e3);
        let mut e4 = Vec::new();
        assert!(!hs2.merge_check(&r(1, 30, 1), Axis::Child, &mut e4));
    }

    #[test]
    fn clear_frees_everything() {
        let mut hs = HierStack::new(false);
        push3(&mut hs);
        assert!(hs.live_bytes() > 0);
        hs.clear();
        assert!(hs.is_empty());
        assert_eq!(hs.live_bytes(), 0);
        // Still usable after clearing.
        hs.push(n(9), r(40, 41, 2), EdgeLists::empty());
        assert_eq!(hs.roots().len(), 1);
    }
}
