//! The bottom-up Twig²Stack matching algorithm (paper Figure 7).
//!
//! Elements are processed in **post-order** — i.e. on their
//! [`Event::End`]s, which a SAX scan delivers for free (paper §7) and a DOM
//! walk produces with one explicit stack. For each closing element `e` and
//! each query node `E` with a matching label:
//!
//! 1. check every mandatory query step `E → M` by merging `HS[M]`
//!    (recording result edges), short-circuiting on the first failure;
//! 2. if all mandatory steps hold, also merge/record the optional steps,
//!    then merge `HS[E]`'s trees below `e` and push `e` on top.
//!
//! Query nodes matching one label are visited parents-first (GTP ids are
//! topologically ordered), so an element that matches both endpoints of a
//! step `E → M` is never treated as its own descendant.

use crate::edges::{EdgeLists, EdgeTarget};
use crate::hstack::HierStack;
use crate::memory::MemoryMeter;
use gtpquery::{Gtp, LabelDispatch, QNodeId, QueryAnalysis};
use xmldom::{Document, Event, Label, LabelTable, NodeId, Region};

/// Tuning knobs for the matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchOptions {
    /// Enable the existence-checking-node optimization (paper §3.5).
    pub existence_opt: bool,
}

impl Default for MatchOptions {
    fn default() -> Self {
        MatchOptions { existence_opt: true }
    }
}

/// Counters reported after matching.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Elements pushed into hierarchical stacks (across all query nodes).
    pub elements_pushed: usize,
    /// Document elements whose label matched some query node.
    pub elements_considered: usize,
    /// Result edges recorded.
    pub edges_created: usize,
    /// Peak logical bytes held by the hierarchical stacks.
    pub peak_bytes: usize,
    /// Live logical bytes at the end of the document.
    pub final_bytes: usize,
}

/// The Twig²Stack matcher: feed it post-order element closes, then take
/// the [`TwigMatch`] encoding.
pub struct Matcher<'g> {
    gtp: &'g Gtp,
    analysis: QueryAnalysis,
    dispatch: LabelDispatch,
    stacks: Vec<HierStack>,
    /// Reusable per-child edge buffers.
    scratch: Vec<Vec<EdgeTarget>>,
    /// Text source for value predicates (paper §3.4). Structure-only
    /// streams cannot provide one; queries with value predicates then
    /// panic with a clear message.
    text: Option<&'g Document>,
    meter: MemoryMeter,
    stats: MatchStats,
}

impl<'g> Matcher<'g> {
    /// Create a matcher for `gtp` against documents using `labels`.
    pub fn new(gtp: &'g Gtp, labels: &LabelTable, options: MatchOptions) -> Self {
        Self::new_in(gtp, labels, options, &mut crate::context::EvalContext::new())
    }

    /// Like [`Self::new`], drawing arenas and scratch buffers from `ctx`'s
    /// pools instead of allocating fresh ones. Pair with
    /// [`Self::finish_into`] / [`EvalContext::recycle`](crate::context::EvalContext::recycle)
    /// to return them.
    pub fn new_in(
        gtp: &'g Gtp,
        labels: &LabelTable,
        options: MatchOptions,
        ctx: &mut crate::context::EvalContext,
    ) -> Self {
        let analysis = QueryAnalysis::new(gtp);
        let dispatch = LabelDispatch::compile(gtp, labels);
        let stacks = gtp
            .iter()
            .map(|q| {
                ctx.take_stack(options.existence_opt && analysis.is_existence_checking(q))
            })
            .collect();
        let max_children = gtp.iter().map(|q| gtp.children(q).len()).max().unwrap_or(0);
        Matcher {
            gtp,
            analysis,
            dispatch,
            stacks,
            scratch: (0..max_children).map(|_| ctx.take_scratch()).collect(),
            text: None,
            meter: MemoryMeter::new(),
            stats: MatchStats::default(),
        }
    }

    /// Provide the document as a text source so value predicates
    /// (`[year='2006']`-style) can be evaluated during the traversal —
    /// which also shrinks the hierarchical stacks (paper §3.4).
    pub fn with_text_source(mut self, doc: &'g Document) -> Self {
        self.text = Some(doc);
        self
    }

    /// Process one element close (post-order visit).
    pub fn on_element_close(&mut self, node: NodeId, label: Label, region: Region) {
        let qnodes = self.dispatch.query_nodes(label);
        if qnodes.is_empty() {
            return;
        }
        self.stats.elements_considered += 1;
        // GTP node ids are topologically ordered (parents first), which is
        // exactly the order required when one element matches several
        // query nodes (see module docs).
        for i in 0..qnodes.len() {
            let q = self.dispatch.query_nodes(label)[i];
            self.match_one_node(node, region, q);
        }
        let live = self.live_bytes();
        self.meter.sample(live);
    }

    /// Current logical bytes held by the hierarchical stacks. The parallel
    /// evaluator aggregates this across workers into a shared counter so
    /// the reported peak is the true concurrent peak, not a per-worker max
    /// or a sum of per-worker peaks.
    pub fn live_bytes(&self) -> usize {
        self.stacks.iter().map(HierStack::live_bytes).sum()
    }

    /// Graft a finished chunk encoding onto this matcher (parallel merge):
    /// every stack tree of `chunk` is appended after this matcher's
    /// current trees, with edge targets remapped into the combined arenas,
    /// and the chunk's counters are folded into this matcher's statistics
    /// (peak bytes are tracked by the caller across workers). The chunk
    /// must answer the same query and lie strictly after everything
    /// processed so far in document order.
    pub(crate) fn splice(&mut self, chunk: TwigMatch<'g>, stats: &MatchStats) {
        debug_assert!(
            std::ptr::eq(self.gtp, chunk.gtp),
            "chunk must answer the same query"
        );
        // Snapshot every arena's length first: a chunk element's edge list
        // `i` references the *child* query node's stack, whose nodes land
        // at the child's pre-splice offset.
        let offsets: Vec<u32> = self.stacks.iter().map(|s| s.node_count() as u32).collect();
        for (q, stack) in self.gtp.iter().zip(chunk.stacks) {
            let child_offsets: Vec<u32> = self
                .gtp
                .children(q)
                .iter()
                .map(|c| offsets[c.index()])
                .collect();
            self.stacks[q.index()].splice(stack, &child_offsets);
        }
        self.stats.elements_pushed += stats.elements_pushed;
        self.stats.elements_considered += stats.elements_considered;
        self.stats.edges_created += stats.edges_created;
        let live = self.live_bytes();
        self.meter.sample(live);
    }

    /// Paper `MatchOneNode` (Figure 7).
    fn match_one_node(&mut self, node: NodeId, region: Region, q: QNodeId) {
        // A rooted query's root node only matches level-1 elements.
        if q == self.gtp.root() && self.gtp.is_rooted() && region.level != 1 {
            return;
        }
        if let Some(pred) = self.gtp.value_pred(q) {
            let doc = self.text.unwrap_or_else(|| {
                panic!("query has value predicates; a text source is required \
                        (use with_text_source / match_document, not a \
                        structure-only stream)")
            });
            if !pred.matches(doc.text(node)) {
                return;
            }
        }
        let children = self.gtp.children(q);
        // Mandatory steps grouped by OR-group (paper §3.3.3, AND/OR
        // twigs): every member is merged (cost maintenance), each group
        // contributes the OR of its checks, the node needs every group.
        let mut satisfied = true;
        'groups: for group in self.analysis.mandatory_groups(q) {
            let mut any = false;
            for &j in group {
                let mj = children[j];
                let ej = self.gtp.edge(mj).expect("child edge");
                self.scratch[j].clear();
                let mut buf = std::mem::take(&mut self.scratch[j]);
                any |= self.stacks[mj.index()].merge_check(&region, ej.axis, &mut buf);
                self.scratch[j] = buf;
            }
            if !any {
                satisfied = false;
                break 'groups;
            }
        }
        if !satisfied {
            return;
        }
        for (i, &m) in children.iter().enumerate() {
            let edge = self.gtp.edge(m).expect("child edge");
            if !edge.optional {
                continue;
            }
            self.scratch[i].clear();
            let mut buf = std::mem::take(&mut self.scratch[i]);
            self.stacks[m.index()].merge_check(&region, edge.axis, &mut buf);
            self.scratch[i] = buf;
        }
        let edges = if children.is_empty()
            || self.scratch[..children.len()].iter().all(Vec::is_empty)
        {
            EdgeLists::empty()
        } else {
            // Clone (exact-size) rather than take, so the scratch buffers
            // keep their capacity across elements.
            EdgeLists::new(
                self.scratch[..children.len()]
                    .iter()
                    .map(|v| v.to_vec())
                    .collect(),
            )
        };
        self.stats.edges_created += edges.total_edges();
        twigobs::add(twigobs::Counter::EdgesCreated, edges.total_edges() as u64);
        self.stacks[q.index()].push(node, region, edges);
        self.stats.elements_pushed += 1;
    }

    /// Finish matching: return the encoding plus statistics.
    pub fn finish(mut self) -> (TwigMatch<'g>, MatchStats) {
        self.stats.peak_bytes = self.meter.peak();
        self.stats.final_bytes = self.live_bytes();
        (
            TwigMatch {
                gtp: self.gtp,
                analysis: self.analysis,
                stacks: self.stacks,
            },
            self.stats,
        )
    }

    /// [`Self::finish`], returning the scratch edge buffers to `ctx`'s
    /// pool. (The stack arenas travel inside the returned [`TwigMatch`];
    /// recycle them with [`EvalContext::recycle`](crate::context::EvalContext::recycle).)
    pub fn finish_into(
        mut self,
        ctx: &mut crate::context::EvalContext,
    ) -> (TwigMatch<'g>, MatchStats) {
        ctx.put_scratch(std::mem::take(&mut self.scratch));
        self.finish()
    }
}

/// The complete Twig²Stack encoding of a document's matches: one
/// hierarchical stack per query node plus the result edges inside them.
/// Feed it to [`crate::enumerate::enumerate`] to produce tuples.
pub struct TwigMatch<'g> {
    pub(crate) gtp: &'g Gtp,
    pub(crate) analysis: QueryAnalysis,
    pub(crate) stacks: Vec<HierStack>,
}

/// A borrowed view over matching state, letting the enumeration algorithms
/// run both over a finished [`TwigMatch`] and over the in-flight stacks of
/// the early-enumeration mode (paper §4.4).
#[derive(Clone, Copy)]
pub(crate) struct MatchView<'a> {
    pub(crate) gtp: &'a Gtp,
    pub(crate) analysis: &'a QueryAnalysis,
    pub(crate) stacks: &'a [HierStack],
}

impl MatchView<'_> {
    pub(crate) fn stack(&self, q: QNodeId) -> &HierStack {
        &self.stacks[q.index()]
    }
}

impl TwigMatch<'_> {
    /// The query this encoding answers.
    pub fn gtp(&self) -> &Gtp {
        self.gtp
    }

    pub(crate) fn view(&self) -> MatchView<'_> {
        MatchView {
            gtp: self.gtp,
            analysis: &self.analysis,
            stacks: &self.stacks,
        }
    }

    /// The analysis used during matching.
    pub fn analysis(&self) -> &QueryAnalysis {
        &self.analysis
    }

    /// The hierarchical stack of query node `q`.
    pub fn stack(&self, q: QNodeId) -> &HierStack {
        &self.stacks[q.index()]
    }

    /// Number of elements in `HS[root]` — the twig-match witnesses.
    pub fn root_match_count(&self) -> usize {
        self.stacks[self.gtp.root().index()].pushed()
    }

    /// Validate all stack invariants (tests only; walks every stack).
    pub fn check_invariants(&self) {
        for s in &self.stacks {
            s.check_invariants();
        }
    }

    /// Dismantle into the per-query-node stack arenas (for pooling).
    pub(crate) fn into_stacks(self) -> Vec<HierStack> {
        self.stacks
    }
}

/// Run the matcher over an in-memory document.
pub fn match_document<'g>(
    doc: &'g Document,
    gtp: &'g Gtp,
    options: MatchOptions,
) -> (TwigMatch<'g>, MatchStats) {
    let _span = twigobs::span(twigobs::Phase::Match);
    let mut m = Matcher::new(gtp, doc.labels(), options).with_text_source(doc);
    for ev in xmldom::DocEvents::new(doc) {
        if let Event::End { elem, label, region } = ev {
            m.on_element_close(elem, label, region);
        }
    }
    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtpquery::parse_twig;
    use xmldom::parse;

    /// Paper Figure 1 document.
    fn figure1() -> Document {
        parse(
            "<a><a><a><b><c/><d/></b></a><b><a><b><c/><d><d/></d></b></a><c/></b></a>\
             <b><d/></b></a>",
        )
        .unwrap()
    }

    #[test]
    fn figure4_stack_contents() {
        // //A/B[//D][/C] over Figure 1: HS[A] = {a2,a3,a4} in one tree,
        // HS[B] = {b1,b2,b3}, HS[C] = {c1,c2,c3}, HS[D] = {d1,d2,d3,d4}.
        let doc = figure1();
        let gtp = parse_twig("//a/b[//d][c]").unwrap();
        let (tm, stats) = match_document(&doc, &gtp, MatchOptions { existence_opt: false });
        tm.check_invariants();
        let a = gtp.root();
        let b = gtp.find("b").unwrap();
        let c = gtp.find("c").unwrap();
        let d = gtp.find("d").unwrap();
        assert_eq!(tm.stack(a).pushed(), 3);
        assert_eq!(tm.stack(b).pushed(), 3);
        assert_eq!(tm.stack(c).pushed(), 3);
        assert_eq!(tm.stack(d).pushed(), 4);
        // HS[A] is a single tree (a2 root, a3/a4 children).
        assert_eq!(tm.stack(a).roots().len(), 1);
        // HS[D] merged into fewer root trees by the b-step checks; the
        // total element count is what matters.
        assert_eq!(stats.elements_pushed, 13);
        assert!(stats.peak_bytes > 0);
        assert_eq!(tm.root_match_count(), 3);
    }

    #[test]
    fn theorem1_push_iff_subtwig_satisfied() {
        // Differential check of Theorem 1 against the brute-force table.
        use twigbaselines::SatTable;
        let docs = [
            figure1(),
            parse("<a><b/><a><b><c/></b></a></a>").unwrap(),
            parse("<x><a><a><b/></a></a><a/></x>").unwrap(),
        ];
        let queries = ["//a/b[//d][c]", "//a/b", "//a//b", "//a/a/b", "//a[b]//c"];
        for doc in &docs {
            for qs in queries {
                let gtp = parse_twig(qs).unwrap();
                let (tm, _) = match_document(doc, &gtp, MatchOptions { existence_opt: false });
                let sat = SatTable::compute(doc, &gtp);
                let mut locs = Vec::new();
                for q in gtp.iter() {
                    let expected = sat.matches(q);
                    let mut got: Vec<NodeId> = Vec::new();
                    for &r in tm.stack(q).roots() {
                        locs.clear();
                        tm.stack(q).tree_elements_into(r, &mut locs);
                        for &loc in &locs {
                            got.push(tm.stack(q).elem(loc).node);
                        }
                    }
                    got.sort_unstable();
                    assert_eq!(got, expected, "query {qs}, node {q}");
                }
            }
        }
    }

    #[test]
    fn rooted_query_filters_root_pushes() {
        let doc = parse("<a><a><b/></a><b/></a>").unwrap();
        let rooted = parse_twig("/a/b").unwrap();
        let (tm, _) = match_document(&doc, &rooted, MatchOptions::default());
        assert_eq!(tm.root_match_count(), 1); // only the level-1 a
        let unrooted = parse_twig("//a/b").unwrap();
        let (tm2, _) = match_document(&doc, &unrooted, MatchOptions::default());
        assert_eq!(tm2.root_match_count(), 2);
    }

    #[test]
    fn self_match_is_not_its_own_descendant() {
        // //a/a and //a//a on nested a's: an element matching both query
        // nodes must not satisfy the step with itself.
        let doc = parse("<a><a/></a>").unwrap();
        let gtp = parse_twig("//a/a").unwrap();
        let (tm, _) = match_document(&doc, &gtp, MatchOptions::default());
        assert_eq!(tm.root_match_count(), 1); // only the outer a
        let doc2 = parse("<a/>").unwrap();
        let gtp2 = parse_twig("//a//a").unwrap();
        let (tm2, _) = match_document(&doc2, &gtp2, MatchOptions::default());
        assert_eq!(tm2.root_match_count(), 0);
    }

    #[test]
    fn optional_edges_do_not_gate_pushes() {
        let doc = parse("<r><p><x/></p><p/></r>").unwrap();
        let gtp = parse_twig("//p[?x]").unwrap();
        let (tm, _) = match_document(&doc, &gtp, MatchOptions::default());
        assert_eq!(tm.root_match_count(), 2); // both p's match
        let strict = parse_twig("//p[x]").unwrap();
        let (tm2, _) = match_document(&doc, &strict, MatchOptions::default());
        assert_eq!(tm2.root_match_count(), 1);
    }

    #[test]
    fn existence_opt_reduces_memory() {
        let doc = figure1();
        // B return only: C and D existence-checking.
        let gtp = parse_twig("//a!/b[//d!][c!]").unwrap();
        let (_, with) = match_document(&doc, &gtp, MatchOptions { existence_opt: true });
        let (_, without) = match_document(&doc, &gtp, MatchOptions { existence_opt: false });
        assert!(with.peak_bytes <= without.peak_bytes);
        assert!(with.edges_created < without.edges_created);
        // Same number of matched elements either way.
        assert_eq!(with.elements_pushed, without.elements_pushed);
    }

    #[test]
    fn wildcard_matching() {
        let doc = parse("<r><p><x/></p><q><x/></q></r>").unwrap();
        let gtp = parse_twig("//*/x").unwrap();
        let (tm, _) = match_document(&doc, &gtp, MatchOptions::default());
        assert_eq!(tm.root_match_count(), 2); // p and q
    }

    #[test]
    fn no_matching_labels_short_circuits() {
        let doc = parse("<r><p/></r>").unwrap();
        let gtp = parse_twig("//zzz/yyy").unwrap();
        let (tm, stats) = match_document(&doc, &gtp, MatchOptions::default());
        assert_eq!(tm.root_match_count(), 0);
        assert_eq!(stats.elements_considered, 0);
        assert_eq!(stats.peak_bytes, 0);
    }
}
