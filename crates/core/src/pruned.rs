//! Index-backed, path-summary-pruned Twig²Stack evaluation.
//!
//! [`evaluate_indexed`] drives the [`Matcher`] from an [`ElementIndex`]
//! instead of a DOM walk. The planner side lives in
//! [`gtpquery::SummaryFeasibility`]: the GTP is evaluated over the
//! document's path summary (strong DataGuide), yielding per query node the
//! set of summary ids any match projection can use. From that this driver
//! builds, per distinct query label, an [`xmlindex::PrunedStream`] that
//!
//! * drops elements whose summary id is infeasible for **every** query
//!   node dispatched to the label, and
//! * gallops (skip-scan) past document regions that no candidate root
//!   element spans, using the feasibility root cover.
//!
//! The streams are merged by `LeftPos` and the post-order close sequence
//! Figure 7 needs is reconstructed with one pending stack: an element is
//! closed as soon as a later element starts past its `RightPos`.
//!
//! Soundness: the feasible sets over-approximate the summary ids of every
//! element that participates in or witnesses a result, so pruning removes
//! only provably-irrelevant elements and the outcome is byte-identical to
//! the unpruned evaluation (enforced by the `pruned_vs_unpruned` fuzz
//! invariant). A query node whose feasible set is empty can never be
//! satisfied; if it is mandatory the whole query is unsatisfiable and
//! evaluation short-circuits **without reading a single stream element**.

use crate::enumerate::enumerate;
use crate::matcher::{MatchOptions, MatchStats, Matcher, TwigMatch};
use gtpquery::{Gtp, LabelDispatch, ResultSet, SummaryFeasibility};
use xmldom::{Document, Label, NodeId, Region};
use xmlindex::{ElemStream, ElementIndex, PruningPolicy, SummarySet};

/// Match `gtp` against `doc` by merging the index's label streams, pruned
/// according to `policy`. Equivalent to
/// [`match_document`](crate::match_document) (same stacks, same result
/// edges), but reads only summary-feasible elements inside candidate root
/// regions when pruning is enabled.
pub fn match_indexed<'g>(
    doc: &'g Document,
    index: &ElementIndex,
    gtp: &'g Gtp,
    options: MatchOptions,
    policy: PruningPolicy,
) -> (TwigMatch<'g>, MatchStats) {
    let _span = twigobs::span(twigobs::Phase::Match);
    let labels = doc.labels();
    let matcher = Matcher::new(gtp, labels, options).with_text_source(doc);
    let dispatch = LabelDispatch::compile(gtp, labels);
    let summary = index.summary();

    let feas = policy
        .is_enabled()
        .then(|| SummaryFeasibility::compute(gtp, summary, labels));
    if feas.as_ref().is_some_and(SummaryFeasibility::is_unsatisfiable) {
        // Some mandatory query node has no feasible root-to-node path
        // anywhere in the document: the result is empty, no stream read.
        return matcher.finish();
    }
    let cover = feas.as_ref().map(|f| f.root_cover(gtp, summary));

    // One stream per label some query node dispatches to, restricted to
    // the union of the dispatched nodes' feasible summary ids.
    let plan: Vec<(Label, Option<SummarySet>)> = (0..labels.len())
        .map(Label::from_index)
        .filter(|&l| !dispatch.query_nodes(l).is_empty())
        .map(|l| {
            let filter = feas.as_ref().map(|f| {
                let mut set = SummarySet::empty(summary.len());
                for &q in dispatch.query_nodes(l) {
                    set.union(f.feasible(q));
                }
                set
            });
            (l, filter)
        })
        .collect();
    let streams = plan
        .iter()
        .map(|(l, filter)| (*l, index.pruned_stream(*l, filter.as_ref(), cover.as_ref())));
    drive(matcher, streams)
}

/// Merge label streams by `LeftPos` and feed the matcher post-order.
fn drive<'g, S: ElemStream>(
    mut matcher: Matcher<'g>,
    streams: impl Iterator<Item = (Label, S)>,
) -> (TwigMatch<'g>, MatchStats) {
    let mut streams: Vec<(Label, S)> = streams.collect();
    // Elements still open at the merge head; popped (and closed) once the
    // head starts past their RightPos. Tops are innermost, so pop order is
    // exactly the post-order close order.
    let mut pending: Vec<(NodeId, Label, Region)> = Vec::new();
    loop {
        let mut best: Option<(usize, xmlindex::IndexedElement)> = None;
        for (i, (_, s)) in streams.iter_mut().enumerate() {
            if let Some(e) = s.peek() {
                let better = match &best {
                    None => true,
                    Some((_, b)) => e.region.left < b.region.left,
                };
                if better {
                    best = Some((i, e));
                }
            }
        }
        let Some((i, e)) = best else { break };
        streams[i].1.advance();
        while pending
            .last()
            .is_some_and(|&(_, _, r)| r.right < e.region.left)
        {
            let (n, l, r) = pending.pop().expect("checked non-empty");
            matcher.on_element_close(n, l, r);
        }
        pending.push((e.id, streams[i].0, e.region));
    }
    while let Some((n, l, r)) = pending.pop() {
        matcher.on_element_close(n, l, r);
    }
    matcher.finish()
}

/// Match and enumerate from an index in one call with default options.
/// With [`PruningPolicy::Enabled`] this is the fully pruned pipeline; with
/// [`PruningPolicy::Disabled`] it reads the full label streams (the A/B
/// baseline) — both return exactly [`evaluate`](crate::evaluate)'s result.
pub fn evaluate_indexed(
    doc: &Document,
    index: &ElementIndex,
    gtp: &Gtp,
    policy: PruningPolicy,
) -> ResultSet {
    let (tm, _) = match_indexed(doc, index, gtp, MatchOptions::default(), policy);
    enumerate(&tm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use gtpquery::parse_twig;
    use xmldom::parse;

    #[test]
    fn indexed_matches_dom_walk_on_and_off() {
        let xml = "<a><a><b><c/></b></a><b/><b><c/><c/></b><d><b><c/></b></d></a>";
        let doc = parse(xml).unwrap();
        let index = ElementIndex::build(&doc);
        for q in ["//a/b[c]", "//a//b", "//a!/b[c!]", "//a/b[?c@]", "//*[b]/c"] {
            let gtp = parse_twig(q).unwrap();
            let expected = evaluate(&doc, &gtp);
            for policy in [PruningPolicy::Enabled, PruningPolicy::Disabled] {
                let got = evaluate_indexed(&doc, &index, &gtp, policy);
                assert_eq!(got, expected, "query {q}, {policy:?}");
            }
        }
    }

    #[test]
    fn value_predicates_work_through_indexed_path() {
        let doc = parse("<a><b><y>2006</y></b><b><y>2007</y></b></a>").unwrap();
        let index = ElementIndex::build(&doc);
        let gtp = parse_twig("//a/b[y='2006']").unwrap();
        let expected = evaluate(&doc, &gtp);
        assert_eq!(expected.len(), 1);
        for policy in [PruningPolicy::Enabled, PruningPolicy::Disabled] {
            assert_eq!(evaluate_indexed(&doc, &index, &gtp, policy), expected);
        }
    }

    #[test]
    fn unsatisfiable_query_short_circuits_empty() {
        // The document has b and c elements, but never a c below a b.
        let doc = parse("<a><b/><b/><c/><c/></a>").unwrap();
        let index = ElementIndex::build(&doc);
        let gtp = parse_twig("//b//c").unwrap();
        let rs = evaluate_indexed(&doc, &index, &gtp, PruningPolicy::Enabled);
        assert!(rs.is_empty());
    }
}
