//! Index-backed, path-summary-pruned Twig²Stack evaluation.
//!
//! [`evaluate_indexed`] drives the [`Matcher`] from an [`xmlindex::ElementIndex`]
//! instead of a DOM walk. The planner side lives in
//! [`gtpquery::SummaryFeasibility`]: the GTP is evaluated over the
//! document's path summary (strong DataGuide), yielding per query node the
//! set of summary ids any match projection can use. From that
//! [`IndexedPlan::compute`] builds, per distinct query label, the filter of
//! an [`xmlindex::PrunedStream`] that
//!
//! * drops elements whose summary id is infeasible for **every** query
//!   node dispatched to the label, and
//! * gallops (skip-scan) past document regions that no candidate root
//!   element spans, using the feasibility root cover.
//!
//! The plan is an owned, document-lifetime-free value, so callers that
//! evaluate the same query repeatedly (the `twigserve` plan cache) compute
//! it once and reuse it across requests.
//!
//! The streams are merged by `LeftPos` and the post-order close sequence
//! Figure 7 needs is reconstructed with one pending stack: an element is
//! closed as soon as a later element starts past its `RightPos`.
//!
//! Fallibility and cancellation: [`try_match_indexed`] (and the generic
//! [`try_match_streams`], which accepts disk-backed streams) return a
//! [`QueryError`] instead of a result when a stream fails mid-scan
//! ([`ElemStream::take_error`] is checked after the merge, so a truncated
//! index file can never pass as a short-but-plausible result) or when the
//! caller's [`CancelToken`] fires — the token is polled at stream-advance
//! granularity (every merge step checks the cancellation flag; the
//! deadline clock is consulted every 64 steps to keep `Instant::now` off
//! the per-element path).
//!
//! Soundness: the feasible sets over-approximate the summary ids of every
//! element that participates in or witnesses a result, so pruning removes
//! only provably-irrelevant elements and the outcome is byte-identical to
//! the unpruned evaluation (enforced by the `pruned_vs_unpruned` fuzz
//! invariant). A query node whose feasible set is empty can never be
//! satisfied; if it is mandatory the whole query is unsatisfiable and
//! evaluation short-circuits **without reading a single stream element**.
//! The same over-approximation argument makes the shared-scan batch driver
//! ([`try_match_indexed_group`]) sound: each matcher receives the union of
//! the group's feasible sets — a superset of its own — and supersets never
//! change a matcher's output (the unpruned stream is the largest superset
//! of all).

use crate::context::EvalContext;
use crate::enumerate::enumerate;
use crate::matcher::{MatchOptions, MatchStats, Matcher, TwigMatch};
use gtpquery::{CancelToken, Gtp, LabelDispatch, QueryError, ResultSet, SummaryFeasibility};
use xmldom::{Document, Label, LabelTable, NodeId, Region};
use xmlindex::{
    filter_worthwhile, ElemStream, IndexView, PruningPolicy, RegionCover, SummarySet,
};

/// A reusable, document-lifetime-free evaluation plan for one (query,
/// index) pair: per-label summary filters plus the candidate-root region
/// cover. Computing one runs the summary feasibility analysis — the cost
/// the `twigserve` plan cache amortizes across repeated queries.
#[derive(Debug, Clone)]
pub struct IndexedPlan {
    unsatisfiable: bool,
    streams: Vec<(Label, Option<SummarySet>)>,
    cover: Option<RegionCover>,
}

impl IndexedPlan {
    /// Analyze `gtp` against `index`'s path summary and build the stream
    /// plan. With [`PruningPolicy::Disabled`] the plan still lists the
    /// labels to scan but carries no filters or cover (the A/B baseline).
    pub fn compute<I: IndexView>(
        gtp: &Gtp,
        index: &I,
        labels: &LabelTable,
        policy: PruningPolicy,
    ) -> Self {
        let summary = index.summary();
        let dispatch = LabelDispatch::compile(gtp, labels);
        let feas = policy
            .is_enabled()
            .then(|| SummaryFeasibility::compute(gtp, summary, labels));
        let unsatisfiable = feas.as_ref().is_some_and(SummaryFeasibility::is_unsatisfiable);
        let cover = (!unsatisfiable)
            .then(|| feas.as_ref().map(|f| f.root_cover(gtp, summary)))
            .flatten();
        // One stream per label some query node dispatches to, restricted
        // to the union of the dispatched nodes' feasible summary ids.
        let streams = (0..labels.len())
            .map(Label::from_index)
            .filter(|&l| !dispatch.query_nodes(l).is_empty())
            .map(|l| {
                let filter = feas
                    .as_ref()
                    .map(|f| {
                        let mut set = SummarySet::empty(summary.len());
                        for &q in dispatch.query_nodes(l) {
                            set.union(f.feasible(q));
                        }
                        set
                    })
                    // A filter that admits (nearly) every posting of the
                    // label prunes nothing yet taxes every element with a
                    // sid lookup — drop it (widening a filter is always
                    // sound: supersets never change a matcher's output).
                    .filter(|set| {
                        filter_worthwhile(
                            set.element_count(summary),
                            index.count(l) as u64,
                        )
                    });
                (l, filter)
            })
            .collect();
        IndexedPlan { unsatisfiable, streams, cover }
    }

    /// True iff some mandatory query node has no feasible root-to-node
    /// path anywhere in the document: the result is empty and evaluation
    /// short-circuits without reading a stream element.
    pub fn is_unsatisfiable(&self) -> bool {
        self.unsatisfiable
    }

    /// The labels this plan scans, with each label's summary filter
    /// (`None` = full label stream).
    pub fn stream_plan(&self) -> &[(Label, Option<SummarySet>)] {
        &self.streams
    }

    /// The labels this plan scans, in index order (the batch-grouping
    /// key: queries with equal label sets can share one merged scan).
    pub fn labels(&self) -> Vec<Label> {
        self.streams.iter().map(|&(l, _)| l).collect()
    }
}

/// Match `gtp` against `doc` by merging the index's label streams, pruned
/// according to `policy`. Equivalent to
/// [`match_document`](crate::match_document) (same stacks, same result
/// edges), but reads only summary-feasible elements inside candidate root
/// regions when pruning is enabled.
pub fn match_indexed<'g, I: IndexView>(
    doc: &'g Document,
    index: &I,
    gtp: &'g Gtp,
    options: MatchOptions,
    policy: PruningPolicy,
) -> (TwigMatch<'g>, MatchStats) {
    let plan = IndexedPlan::compute(gtp, index, doc.labels(), policy);
    try_match_indexed(doc, index, gtp, options, &plan, None, &CancelToken::never())
        .expect("in-memory streams cannot fail and the never-token cannot fire")
}

/// Fallible, cancellable [`match_indexed`] over a precomputed
/// [`IndexedPlan`], optionally drawing matcher arenas from a pooled
/// [`EvalContext`] (pass `Some` and [`EvalContext::recycle`] the returned
/// encoding to stop touching the allocator in steady state).
pub fn try_match_indexed<'g, I: IndexView>(
    doc: &'g Document,
    index: &I,
    gtp: &'g Gtp,
    options: MatchOptions,
    plan: &IndexedPlan,
    ctx: Option<&mut EvalContext>,
    cancel: &CancelToken,
) -> Result<(TwigMatch<'g>, MatchStats), QueryError> {
    let _span = twigobs::span(twigobs::Phase::Match);
    let mut fresh = EvalContext::new();
    let ctx = ctx.unwrap_or(&mut fresh);
    let matcher =
        Matcher::new_in(gtp, doc.labels(), options, &mut *ctx).with_text_source(doc);
    if plan.unsatisfiable {
        return Ok(matcher.finish_into(&mut *ctx));
    }
    let streams: Vec<_> = plan
        .streams
        .iter()
        .map(|(l, filter)| index.pruned_stream(*l, filter.as_ref(), plan.cover.as_ref()))
        .collect();
    let mut matchers = [matcher];
    try_drive(&mut matchers, plan.labels(), streams, cancel)?;
    let [matcher] = matchers;
    Ok(matcher.finish_into(&mut *ctx))
}

/// Drive the matcher from caller-supplied per-label streams — the entry
/// point for disk-backed evaluation ([`xmlindex::DiskRegionStream`]). A
/// stream that fails mid-scan surfaces as [`QueryError::Stream`] instead
/// of a silently truncated result; the `cancel` token is polled at
/// stream-advance granularity.
pub fn try_match_streams<'g, S: ElemStream>(
    doc: &'g Document,
    gtp: &'g Gtp,
    streams: Vec<(Label, S)>,
    options: MatchOptions,
    cancel: &CancelToken,
) -> Result<(ResultSet, MatchStats), QueryError> {
    let matcher = Matcher::new(gtp, doc.labels(), options).with_text_source(doc);
    let (labels, streams): (Vec<Label>, Vec<S>) = streams.into_iter().unzip();
    let mut matchers = [matcher];
    {
        let _span = twigobs::span(twigobs::Phase::Match);
        try_drive(&mut matchers, labels, streams, cancel)?;
    }
    let [matcher] = matchers;
    let (tm, stats) = matcher.finish();
    Ok((enumerate(&tm), stats))
}

/// Evaluate a batch of queries over **one shared scan**: the group's label
/// streams are merged once, each filtered by the union of the member
/// plans' summary filters, and every close event is offered to every
/// member's matcher. Callers group queries by equal
/// [`IndexedPlan::labels`] sets so no matcher is fed labels it never
/// dispatches on; the driver is nonetheless correct for any grouping
/// (matcher dispatch ignores foreign labels, and a superset of feasible
/// elements never changes a matcher's output). Unsatisfiable members cost
/// nothing and return empty encodings.
pub fn try_match_indexed_group<'g, I: IndexView>(
    doc: &'g Document,
    index: &I,
    queries: &[(&'g Gtp, &IndexedPlan)],
    options: MatchOptions,
    cancel: &CancelToken,
) -> Result<Vec<(TwigMatch<'g>, MatchStats)>, QueryError> {
    let _span = twigobs::span(twigobs::Phase::Match);
    let mut matchers: Vec<Matcher<'g>> = queries
        .iter()
        .map(|(gtp, _)| Matcher::new(gtp, doc.labels(), options).with_text_source(doc))
        .collect();
    // Union the satisfiable members' filters per label. `None` (full
    // stream) for a label absorbs every filter.
    let mut union: Vec<(Label, Option<SummarySet>)> = Vec::new();
    for (_, plan) in queries.iter().filter(|(_, p)| !p.is_unsatisfiable()) {
        for (l, filter) in &plan.streams {
            match union.iter_mut().find(|(ul, _)| ul == l) {
                None => union.push((*l, filter.clone())),
                Some((_, existing)) => match (existing.as_mut(), filter) {
                    (Some(e), Some(f)) => e.union(f),
                    _ => *existing = None,
                },
            }
        }
    }
    // The members' root covers are per-query; their union is rarely
    // tighter than nothing, so the shared scan runs uncovered (correct:
    // the cover only skips, never adds).
    let streams: Vec<_> = union
        .iter()
        .map(|(l, filter)| index.pruned_stream(*l, filter.as_ref(), None))
        .collect();
    let labels: Vec<Label> = union.iter().map(|&(l, _)| l).collect();
    try_drive(&mut matchers, labels, streams, cancel)?;
    Ok(matchers.into_iter().map(Matcher::finish).collect())
}

/// Merge label streams by `LeftPos` and feed every matcher post-order.
/// Checks `cancel` per merge step and sweeps [`ElemStream::take_error`]
/// when the merge ends, so stream failures win over truncated results.
fn try_drive<'g, S: ElemStream>(
    matchers: &mut [Matcher<'g>],
    labels: Vec<Label>,
    streams: Vec<S>,
    cancel: &CancelToken,
) -> Result<(), QueryError> {
    let mut streams: Vec<(Label, S)> = labels.into_iter().zip(streams).collect();
    // Elements still open at the merge head; popped (and closed) once the
    // head starts past their RightPos. Tops are innermost, so pop order is
    // exactly the post-order close order.
    let mut pending: Vec<(NodeId, Label, Region)> = Vec::new();
    let mut tick: u32 = 0;
    let result = loop {
        // Stream-advance-granularity cancellation: the flag is one atomic
        // load per step; the deadline clock is consulted on the first
        // step and every 64 thereafter (so even tiny scans observe an
        // already-expired deadline).
        tick = tick.wrapping_add(1);
        if tick & 0x3F == 1 {
            if let Err(e) = cancel.check() {
                break Err(e);
            }
        } else if cancel.is_cancelled() {
            break Err(QueryError::Cancelled);
        }
        let mut best: Option<(usize, xmlindex::IndexedElement)> = None;
        for (i, (_, s)) in streams.iter_mut().enumerate() {
            if let Some(e) = s.peek() {
                let better = match &best {
                    None => true,
                    Some((_, b)) => e.region.left < b.region.left,
                };
                if better {
                    best = Some((i, e));
                }
            }
        }
        let Some((i, e)) = best else { break Ok(()) };
        streams[i].1.advance();
        while pending
            .last()
            .is_some_and(|&(_, _, r)| r.right < e.region.left)
        {
            let (n, l, r) = pending.pop().expect("checked non-empty");
            for m in matchers.iter_mut() {
                m.on_element_close(n, l, r);
            }
        }
        pending.push((e.id, streams[i].0, e.region));
    };
    // Error sweep before results: any stream that failed reported EOF to
    // the merge above, so its "completion" may be a truncation.
    for (_, s) in streams.iter_mut() {
        if let Some(e) = s.take_error() {
            return Err(QueryError::Stream(e));
        }
    }
    result?;
    while let Some((n, l, r)) = pending.pop() {
        for m in matchers.iter_mut() {
            m.on_element_close(n, l, r);
        }
    }
    Ok(())
}

/// Match and enumerate from an index in one call with default options.
/// With [`PruningPolicy::Enabled`] this is the fully pruned pipeline; with
/// [`PruningPolicy::Disabled`] it reads the full label streams (the A/B
/// baseline) — both return exactly [`evaluate`](crate::evaluate)'s result.
pub fn evaluate_indexed<I: IndexView>(
    doc: &Document,
    index: &I,
    gtp: &Gtp,
    policy: PruningPolicy,
) -> ResultSet {
    let (tm, _) = match_indexed(doc, index, gtp, MatchOptions::default(), policy);
    enumerate(&tm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use gtpquery::parse_twig;
    use xmldom::parse;
    use xmlindex::ElementIndex;

    #[test]
    fn indexed_matches_dom_walk_on_and_off() {
        let xml = "<a><a><b><c/></b></a><b/><b><c/><c/></b><d><b><c/></b></d></a>";
        let doc = parse(xml).unwrap();
        let index = ElementIndex::build(&doc);
        for q in ["//a/b[c]", "//a//b", "//a!/b[c!]", "//a/b[?c@]", "//*[b]/c"] {
            let gtp = parse_twig(q).unwrap();
            let expected = evaluate(&doc, &gtp);
            for policy in [PruningPolicy::Enabled, PruningPolicy::Disabled] {
                let got = evaluate_indexed(&doc, &index, &gtp, policy);
                assert_eq!(got, expected, "query {q}, {policy:?}");
            }
        }
    }

    #[test]
    fn value_predicates_work_through_indexed_path() {
        let doc = parse("<a><b><y>2006</y></b><b><y>2007</y></b></a>").unwrap();
        let index = ElementIndex::build(&doc);
        let gtp = parse_twig("//a/b[y='2006']").unwrap();
        let expected = evaluate(&doc, &gtp);
        assert_eq!(expected.len(), 1);
        for policy in [PruningPolicy::Enabled, PruningPolicy::Disabled] {
            assert_eq!(evaluate_indexed(&doc, &index, &gtp, policy), expected);
        }
    }

    #[test]
    fn full_coverage_filter_is_dropped() {
        // Every <b> lies on a feasible path for //a//b, so a summary
        // filter would admit 100% of the label's postings while taxing
        // each with a sid lookup (the XMark-Q2 regression: pruned slower
        // than full scan with elements_pruned == 0). The plan must drop
        // such a filter: zero pruning ⇒ zero per-element extra work.
        let doc = parse("<a><b/><b/><b/><c><b/></c></a>").unwrap();
        let index = ElementIndex::build(&doc);
        let b = doc.labels().get("b").unwrap();
        let gtp = parse_twig("//a//b").unwrap();
        let plan = IndexedPlan::compute(&gtp, &index, doc.labels(), PruningPolicy::Enabled);
        for (l, filter) in plan.stream_plan() {
            if *l == b {
                assert!(filter.is_none(), "full-coverage filter must be dropped");
            }
        }
        assert_eq!(
            evaluate_indexed(&doc, &index, &gtp, PruningPolicy::Enabled),
            evaluate(&doc, &gtp)
        );
        // A selective query (1 of 4 b's feasible) must keep its filter.
        let gtp2 = parse_twig("//c/b").unwrap();
        let plan2 = IndexedPlan::compute(&gtp2, &index, doc.labels(), PruningPolicy::Enabled);
        assert!(
            plan2.stream_plan().iter().any(|(l, f)| *l == b && f.is_some()),
            "selective filter must be kept"
        );
        assert_eq!(
            evaluate_indexed(&doc, &index, &gtp2, PruningPolicy::Enabled),
            evaluate(&doc, &gtp2)
        );
    }

    #[test]
    fn unsatisfiable_query_short_circuits_empty() {
        // The document has b and c elements, but never a c below a b.
        let doc = parse("<a><b/><b/><c/><c/></a>").unwrap();
        let index = ElementIndex::build(&doc);
        let gtp = parse_twig("//b//c").unwrap();
        let rs = evaluate_indexed(&doc, &index, &gtp, PruningPolicy::Enabled);
        assert!(rs.is_empty());
    }

    #[test]
    fn plan_reuse_with_pooled_context_matches_fresh() {
        let xml = "<a><a><b><c/></b></a><b/><b><c/><c/></b><d><b><c/></b></d></a>";
        let doc = parse(xml).unwrap();
        let index = ElementIndex::build(&doc);
        let mut ctx = EvalContext::new();
        for q in ["//a/b[c]", "//a//b", "//a/b[?c@]"] {
            let gtp = parse_twig(q).unwrap();
            let expected = evaluate(&doc, &gtp);
            let plan =
                IndexedPlan::compute(&gtp, &index, doc.labels(), PruningPolicy::Enabled);
            let mut stats = Vec::new();
            for _round in 0..3 {
                let (tm, s) = try_match_indexed(
                    &doc,
                    &index,
                    &gtp,
                    MatchOptions::default(),
                    &plan,
                    Some(&mut ctx),
                    &CancelToken::never(),
                )
                .unwrap();
                assert_eq!(enumerate(&tm), expected, "{q}");
                stats.push(s);
                ctx.recycle(tm);
            }
            assert_eq!(stats[0], stats[1], "pooled reuse must not change stats: {q}");
            assert_eq!(stats[1], stats[2], "pooled reuse must not change stats: {q}");
        }
    }

    #[test]
    fn cancelled_token_aborts_evaluation() {
        let doc = parse("<a><b><c/></b><b/></a>").unwrap();
        let index = ElementIndex::build(&doc);
        let gtp = parse_twig("//a/b[c]").unwrap();
        let plan = IndexedPlan::compute(&gtp, &index, doc.labels(), PruningPolicy::Enabled);
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = match try_match_indexed(
            &doc,
            &index,
            &gtp,
            MatchOptions::default(),
            &plan,
            None,
            &cancel,
        ) {
            Ok(_) => panic!("cancelled evaluation must not produce a result"),
            Err(e) => e,
        };
        assert!(matches!(err, QueryError::Cancelled));
    }

    #[test]
    fn group_driver_matches_solo_evaluation() {
        let xml = "<a><a><b><c/></b></a><b/><b><c/><c/></b><d><b><c/></b></d></a>";
        let doc = parse(xml).unwrap();
        let index = ElementIndex::build(&doc);
        let queries = ["//a/b[c]", "//a//b", "//d/b/c", "//b//c"];
        let gtps: Vec<Gtp> = queries.iter().map(|q| parse_twig(q).unwrap()).collect();
        let plans: Vec<IndexedPlan> = gtps
            .iter()
            .map(|g| IndexedPlan::compute(g, &index, doc.labels(), PruningPolicy::Enabled))
            .collect();
        let group: Vec<(&Gtp, &IndexedPlan)> = gtps.iter().zip(plans.iter()).collect();
        let out = try_match_indexed_group(
            &doc,
            &index,
            &group,
            MatchOptions::default(),
            &CancelToken::never(),
        )
        .unwrap();
        assert_eq!(out.len(), queries.len());
        for ((tm, _), (q, gtp)) in out.iter().zip(queries.iter().zip(&gtps)) {
            assert_eq!(enumerate(tm), evaluate(&doc, gtp), "{q}");
        }
    }
}
