//! Continuous multi-query subscriptions over the event stream
//! ("twigsub", ROADMAP item 2; DESIGN.md §17).
//!
//! The engines in this crate answer *one* query over *one* document.
//! This module inverts the workload: thousands of **standing** GTP
//! subscriptions evaluated in a single pass over an incoming XML event
//! stream — pub/sub, firehose filtering, and change notification for
//! the edit write path — with no index at all.
//!
//! ## Architecture
//!
//! Running N independent [`Matcher`]s would cost O(N) dispatch work per
//! event even when most subscriptions cannot possibly care about the
//! element. Instead, all registered queries are compiled into one
//! **shared prefix-merged automaton** ([`SharedAutomaton`], YFilter-style):
//!
//! 1. Every query node of every subscription contributes its *root
//!    path* — the `(axis, test)` steps from the query root down to that
//!    node — to a prefix trie. Common prefixes across subscriptions
//!    collapse into shared NFA states, so per-event transition work is
//!    amortized across all subscriptions.
//! 2. At runtime a stack of active state sets tracks the current
//!    root-to-element path. `/` steps consume exactly one level;
//!    `//` steps are armed once and *carried* down the subtree
//!    (the classic self-loop encoding of descendant axes). Wildcard
//!    (`*`) transitions fire on every label.
//! 3. A state reached at an element's start tag *accepts* the
//!    subscriptions whose query nodes end there: the element can bind
//!    to at least one query node of those subscriptions. Only those
//!    subscriptions' matchers see the element's close event.
//!
//! Per-subscription match semantics — value predicates, OR-groups,
//! optional edges, result enumeration — are resolved by the paper's
//! bottom-up [`Matcher`] itself, fed the *filtered* post-order close
//! stream. This is sound for the same reason path-summary pruning
//! (DESIGN.md §11) is: an element whose root path cannot embed a query
//! node's root-path pattern can never bind to that node, and the
//! matcher is purely region-driven, so dropping such elements leaves
//! the match encoding — and therefore the enumerated [`ResultSet`] —
//! byte-identical to a solo [`evaluate_streaming`](crate::evaluate_streaming)
//! run (the `subscribed_vs_solo` fuzz invariant and Fig V assert
//! exactly this).
//!
//! ## Quick start
//!
//! ```
//! use gtpquery::parse_twig;
//! use twig2stack::subscribe::{run_subscriptions, SharedAutomaton};
//! use twig2stack::MatchOptions;
//!
//! let auto = SharedAutomaton::build(vec![
//!     parse_twig("//dblp/article/title").unwrap(),
//!     parse_twig("//dblp//author").unwrap(),
//! ]);
//! let xml = "<dblp><article><title/><author/></article></dblp>";
//! let (results, stats) = run_subscriptions(xml, &auto, MatchOptions::default()).unwrap();
//! assert_eq!(results.len(), 2);
//! assert_eq!(results[0].len(), 1); // the title
//! assert_eq!(results[1].len(), 1); // the author
//! assert!(stats.matcher_feeds <= stats.elements * auto.len() as u64);
//! ```

use crate::enumerate;
use crate::matcher::{MatchOptions, Matcher};
use gtpquery::{Axis, CancelToken, Gtp, NodeTest, QueryError, ResultSet};
use std::collections::HashMap;
use xmldom::{Document, Label, LabelTable, NodeId, Region};

/// Handle for one registered subscription; indexes the automaton's
/// query list and the per-subscription result slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(pub u32);

impl SubscriptionId {
    /// The subscription's position in [`SharedAutomaton`] order.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A label test on an automaton transition (name-keyed at build time;
/// bound to interned [`Label`] ids per stream).
#[derive(Debug, Clone, PartialEq, Eq)]
enum StepTest {
    /// Fires on every label.
    Wildcard,
    /// Fires on exactly this tag name.
    Name(String),
}

impl StepTest {
    fn of(test: &NodeTest) -> StepTest {
        match test {
            NodeTest::Wildcard => StepTest::Wildcard,
            NodeTest::Name(n) => StepTest::Name(n.clone()),
        }
    }
}

/// One prefix-trie state. Transitions are split by axis because only
/// descendant (`//`) transitions persist down a subtree.
#[derive(Debug, Default)]
struct NfaState {
    /// `/`-axis transitions: fire from the immediate parent level only.
    child: Vec<(StepTest, u32)>,
    /// `//`-axis transitions: armed here, carried down the subtree.
    desc: Vec<(StepTest, u32)>,
    /// Subscriptions with a query node whose root path ends here
    /// (deduplicated, ascending).
    accepts: Vec<u32>,
}

/// N parsed GTPs compiled into one shared prefix-merged NFA.
///
/// Immutable once built: registration changes rebuild the automaton
/// (construction is linear in total query size — microseconds for
/// thousands of subscriptions). The automaton owns its queries; the
/// runtime engines borrow them.
#[derive(Debug)]
pub struct SharedAutomaton {
    subs: Vec<Gtp>,
    states: Vec<NfaState>,
}

impl SharedAutomaton {
    /// Compile `subs` into one automaton. Subscription `i` keeps id
    /// [`SubscriptionId`]`(i)` and result slot `i` in every run.
    pub fn build(subs: Vec<Gtp>) -> SharedAutomaton {
        let mut states: Vec<NfaState> = vec![NfaState::default()];
        for (si, gtp) in subs.iter().enumerate() {
            for q in gtp.preorder() {
                // The root path of q: (axis, test) steps from the query
                // root down to q. The virtual pre-document state reaches
                // a rooted query's root only via `/` (level 1), an
                // unrooted one via `//` (any level). Edge *optionality*
                // is irrelevant here: binding an element to q always
                // requires the structural relation to hold.
                let mut chain = vec![q];
                let mut cur = q;
                while let Some(p) = gtp.parent(cur) {
                    chain.push(p);
                    cur = p;
                }
                chain.reverse();
                let mut state = 0u32;
                for &n in &chain {
                    let axis = match gtp.edge(n) {
                        Some(e) => e.axis,
                        None if gtp.is_rooted() => Axis::Child,
                        None => Axis::Descendant,
                    };
                    let test = StepTest::of(gtp.test(n));
                    state = Self::step(&mut states, state, axis, test);
                }
                let acc = &mut states[state as usize].accepts;
                if acc.last() != Some(&(si as u32)) {
                    acc.push(si as u32);
                }
            }
        }
        SharedAutomaton { subs, states }
    }

    /// Follow (or create) the transition `(axis, test)` out of `from`.
    fn step(states: &mut Vec<NfaState>, from: u32, axis: Axis, test: StepTest) -> u32 {
        let edges = match axis {
            Axis::Child => &states[from as usize].child,
            Axis::Descendant => &states[from as usize].desc,
        };
        if let Some(&(_, to)) = edges.iter().find(|(t, _)| *t == test) {
            return to;
        }
        let to = states.len() as u32;
        states.push(NfaState::default());
        match axis {
            Axis::Child => states[from as usize].child.push((test, to)),
            Axis::Descendant => states[from as usize].desc.push((test, to)),
        }
        to
    }

    /// Number of registered subscriptions.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// True iff no subscription is registered.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Number of NFA states (prefix merging makes this grow much slower
    /// than total query size — the Fig V amortization argument).
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The registered queries, in [`SubscriptionId`] order.
    pub fn queries(&self) -> &[Gtp] {
        &self.subs
    }

    /// True iff any registered query carries a value predicate (those
    /// need a text source, i.e. the DOM-driven runtime).
    pub fn has_value_preds(&self) -> bool {
        self.subs.iter().any(Gtp::has_value_preds)
    }
}

/// [`SharedAutomaton`] transitions resolved against one stream's
/// [`LabelTable`]: per state, label-id keyed next-state lists, so the
/// per-event hot loop never touches strings.
struct BoundState {
    /// `/`-transitions by label (named tests only).
    child: HashMap<Label, Vec<u32>>,
    /// `//`-transitions by label (named tests only).
    desc: HashMap<Label, Vec<u32>>,
    /// `/`-transitions firing on any label.
    wild_child: Vec<u32>,
    /// `//`-transitions firing on any label.
    wild_desc: Vec<u32>,
    /// True iff the state has any `//` transition and must be carried
    /// down the subtree once reached.
    carries: bool,
    /// Subscriptions accepting at this state.
    accepts: Vec<u32>,
}

/// One stack frame: the automaton state set active inside the current
/// element, plus the subscriptions its start tag accepted.
struct Frame {
    /// `(state, desc_only)`: a `desc_only` entry was carried for its
    /// `//` transitions and must not fire `/` transitions.
    entries: Vec<(u32, bool)>,
    /// Subscriptions whose matchers receive this element's close event.
    relevant: Vec<u32>,
}

/// Aggregate statistics of one subscription run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubRunStats {
    /// Elements the stream delivered (close events seen).
    pub elements: u64,
    /// Total `(subscription, element)` close deliveries — the
    /// amortization metric: a solo-per-query sweep would pay
    /// `len() * elements`.
    pub matcher_feeds: u64,
    /// NFA states in the shared automaton.
    pub states: usize,
}

/// The runtime: drives one [`SharedAutomaton`] over a start/end event
/// stream, feeding each subscription's [`Matcher`] only the elements
/// the automaton proves relevant to it.
///
/// Feed [`on_start`](Self::on_start) / [`on_end`](Self::on_end) in
/// document order (starts in pre-order, ends in post-order — exactly a
/// SAX parse), then [`finish`](Self::finish). The convenience drivers
/// [`run_subscriptions`] (raw XML) and [`run_subscriptions_doc`] (DOM,
/// value predicates supported) wrap this.
pub struct SubscriptionEngine<'a> {
    auto: &'a SharedAutomaton,
    bound: Vec<BoundState>,
    matchers: Vec<Matcher<'a>>,
    frames: Vec<Frame>,
    /// Per-state visit stamps for set-dedup without clearing
    /// (`stamp[s] == generation` ⇒ state `s` already in the new set).
    stamp: Vec<u32>,
    stamp_full: Vec<bool>,
    sub_stamp: Vec<u32>,
    generation: u32,
    stats: SubRunStats,
}

impl<'a> SubscriptionEngine<'a> {
    /// Bind `auto` to a stream's label table. Structure-only streams
    /// cannot evaluate value predicates; chain
    /// [`with_text_source`](Self::with_text_source) when a DOM is
    /// available.
    pub fn new(auto: &'a SharedAutomaton, labels: &LabelTable, options: MatchOptions) -> Self {
        let bound = auto
            .states
            .iter()
            .map(|s| {
                let mut child: HashMap<Label, Vec<u32>> = HashMap::new();
                let mut desc: HashMap<Label, Vec<u32>> = HashMap::new();
                let mut wild_child = Vec::new();
                let mut wild_desc = Vec::new();
                for (test, to) in &s.child {
                    match test {
                        StepTest::Wildcard => wild_child.push(*to),
                        StepTest::Name(n) => {
                            if let Some(l) = labels.get(n) {
                                child.entry(l).or_default().push(*to);
                            }
                        }
                    }
                }
                for (test, to) in &s.desc {
                    match test {
                        StepTest::Wildcard => wild_desc.push(*to),
                        StepTest::Name(n) => {
                            if let Some(l) = labels.get(n) {
                                desc.entry(l).or_default().push(*to);
                            }
                        }
                    }
                }
                BoundState {
                    child,
                    desc,
                    wild_child,
                    wild_desc,
                    // A named `//` transition whose label the stream
                    // never interns can still never fire, but carrying
                    // the state costs one set entry; keep `carries`
                    // exact against the *bound* transitions.
                    carries: !s.desc.is_empty(),
                    accepts: s.accepts.clone(),
                }
            })
            .collect();
        let matchers = auto
            .subs
            .iter()
            .map(|gtp| Matcher::new(gtp, labels, options))
            .collect();
        let state_count = auto.states.len();
        SubscriptionEngine {
            auto,
            bound,
            matchers,
            frames: vec![Frame {
                entries: vec![(0, false)],
                relevant: Vec::new(),
            }],
            stamp: vec![0; state_count],
            stamp_full: vec![false; state_count],
            sub_stamp: vec![0; auto.subs.len()],
            generation: 0,
            stats: SubRunStats {
                elements: 0,
                matcher_feeds: 0,
                states: state_count,
            },
        }
    }

    /// Provide the document as a text source so value predicates can be
    /// resolved during matching (DOM-driven runs only).
    pub fn with_text_source(mut self, doc: &'a Document) -> Self {
        self.matchers = self
            .matchers
            .into_iter()
            .map(|m| m.with_text_source(doc))
            .collect();
        self
    }

    /// An element opened: advance the automaton one level and record
    /// which subscriptions its close event must reach.
    pub fn on_start(&mut self, label: Label) {
        twigobs::bump(twigobs::Counter::SubEvents);
        self.generation += 1;
        let generation = self.generation;
        let mut entries: Vec<(u32, bool)> = Vec::new();
        let mut relevant: Vec<u32> = Vec::new();
        let top = self.frames.len() - 1;
        // Index-based iteration: `entries`/`relevant` borrow `self`
        // mutably while the top frame is read.
        for ei in 0..self.frames[top].entries.len() {
            let (state, desc_only) = self.frames[top].entries[ei];
            let bs = &self.bound[state as usize];
            if !desc_only {
                for &n in bs.child.get(&label).map_or(&[][..], Vec::as_slice) {
                    Self::enter(
                        &self.bound,
                        &mut self.stamp,
                        &mut self.stamp_full,
                        &mut self.sub_stamp,
                        generation,
                        &mut entries,
                        &mut relevant,
                        n,
                    );
                }
                for &n in &bs.wild_child {
                    Self::enter(
                        &self.bound,
                        &mut self.stamp,
                        &mut self.stamp_full,
                        &mut self.sub_stamp,
                        generation,
                        &mut entries,
                        &mut relevant,
                        n,
                    );
                }
            }
            for &n in bs.desc.get(&label).map_or(&[][..], Vec::as_slice) {
                Self::enter(
                    &self.bound,
                    &mut self.stamp,
                    &mut self.stamp_full,
                    &mut self.sub_stamp,
                    generation,
                    &mut entries,
                    &mut relevant,
                    n,
                );
            }
            for &n in &bs.wild_desc {
                Self::enter(
                    &self.bound,
                    &mut self.stamp,
                    &mut self.stamp_full,
                    &mut self.sub_stamp,
                    generation,
                    &mut entries,
                    &mut relevant,
                    n,
                );
            }
            if bs.carries && self.stamp[state as usize] != generation {
                // Carry the armed `//` state into the subtree (desc-only:
                // its `/` transitions must not fire below this level).
                self.stamp[state as usize] = generation;
                self.stamp_full[state as usize] = false;
                entries.push((state, true));
            }
        }
        relevant.sort_unstable();
        self.frames.push(Frame { entries, relevant });
    }

    /// Add `state` to the new active set as a *full* entry, collecting
    /// its accepted subscriptions once per element.
    #[allow(clippy::too_many_arguments)] // internal hot-path helper
    fn enter(
        bound: &[BoundState],
        stamp: &mut [u32],
        stamp_full: &mut [bool],
        sub_stamp: &mut [u32],
        generation: u32,
        entries: &mut Vec<(u32, bool)>,
        relevant: &mut Vec<u32>,
        state: u32,
    ) {
        let si = state as usize;
        if stamp[si] == generation {
            if stamp_full[si] {
                return;
            }
            // Upgrade a carried copy to a full entry.
            if let Some(e) = entries.iter_mut().find(|(s, _)| *s == state) {
                e.1 = false;
            }
        } else {
            stamp[si] = generation;
            entries.push((state, false));
        }
        stamp_full[si] = true;
        for &sub in &bound[si].accepts {
            if sub_stamp[sub as usize] != generation {
                sub_stamp[sub as usize] = generation;
                relevant.push(sub);
            }
        }
    }

    /// An element closed: deliver it to every subscription the matching
    /// start tag accepted, in registration order.
    pub fn on_end(&mut self, elem: NodeId, label: Label, region: Region) {
        twigobs::bump(twigobs::Counter::SubEvents);
        self.stats.elements += 1;
        let frame = self.frames.pop().expect("end tag without matching start");
        self.stats.matcher_feeds += frame.relevant.len() as u64;
        twigobs::add(
            twigobs::Counter::SubMatcherFeeds,
            frame.relevant.len() as u64,
        );
        for &sub in &frame.relevant {
            self.matchers[sub as usize].on_element_close(elem, label, region);
        }
    }

    /// Finish the stream: enumerate every subscription's results, in
    /// [`SubscriptionId`] order.
    pub fn finish(self) -> (Vec<ResultSet>, SubRunStats) {
        debug_assert_eq!(self.frames.len(), 1, "unbalanced event stream");
        let results = self
            .matchers
            .into_iter()
            .map(|m| {
                let (tm, _) = m.finish();
                enumerate(&tm)
            })
            .collect();
        (results, self.stats)
    }

    /// The queries driving this run (automaton order).
    pub fn queries(&self) -> &'a [Gtp] {
        self.auto.queries()
    }
}

/// Run every subscription over a raw XML string in one pass, without
/// materializing a DOM. Results are in [`SubscriptionId`] order and
/// byte-equal to running each query solo through
/// [`evaluate_streaming`](crate::evaluate_streaming).
///
/// # Panics
/// Panics if any registered query carries a value predicate — a
/// structure-only stream has no element text. Use
/// [`run_subscriptions_doc`] instead.
pub fn run_subscriptions(
    xml: &str,
    auto: &SharedAutomaton,
    options: MatchOptions,
) -> Result<(Vec<ResultSet>, SubRunStats), xmldom::ParseError> {
    match run_subscriptions_impl(xml, auto, options, &CancelToken::never()) {
        Ok(out) => Ok(out),
        Err(SubscribeAbort::Parse(e)) => Err(e),
        Err(SubscribeAbort::Query(_)) => unreachable!("never-token cannot cancel"),
    }
}

/// [`run_subscriptions`] under a cooperative [`CancelToken`], polled at
/// tag granularity. Parse failures surface as
/// [`QueryError::Stream`] (the event source died mid-scan).
pub fn try_run_subscriptions(
    xml: &str,
    auto: &SharedAutomaton,
    options: MatchOptions,
    cancel: &CancelToken,
) -> Result<(Vec<ResultSet>, SubRunStats), QueryError> {
    run_subscriptions_impl(xml, auto, options, cancel).map_err(SubscribeAbort::into_query)
}

/// Why a streaming run stopped early: the XML was malformed, or the
/// caller's token fired.
pub(crate) enum SubscribeAbort {
    /// Malformed XML.
    Parse(xmldom::ParseError),
    /// Cancellation or deadline.
    Query(QueryError),
}

impl SubscribeAbort {
    /// Collapse into [`QueryError`]: parse failures become
    /// [`QueryError::Stream`] with the parse message as context.
    pub(crate) fn into_query(self) -> QueryError {
        match self {
            SubscribeAbort::Parse(e) => QueryError::Stream(xmlindex::StreamError::new(
                "xml event stream",
                std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()),
            )),
            SubscribeAbort::Query(e) => e,
        }
    }
}

fn run_subscriptions_impl(
    xml: &str,
    auto: &SharedAutomaton,
    options: MatchOptions,
    cancel: &CancelToken,
) -> Result<(Vec<ResultSet>, SubRunStats), SubscribeAbort> {
    assert!(
        !auto.has_value_preds(),
        "value predicates need element text, which the structure-only \
         stream drops; use run_subscriptions_doc over a DOM instead"
    );
    // Two passes, exactly like `evaluate_streaming`: labels must be
    // interned before the matchers' dispatch tables are built. Both
    // passes intern in first-seen order, so ids align.
    let labels = {
        let _span = twigobs::span(twigobs::Phase::Parse);
        let mut pass1 = xmldom::EventParser::new(xml);
        loop {
            cancel.check().map_err(SubscribeAbort::Query)?;
            match pass1.next_event() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => return Err(SubscribeAbort::Parse(e)),
            }
        }
        pass1.into_labels()
    };
    let mut engine = SubscriptionEngine::new(auto, &labels, options);
    {
        let _span = twigobs::span(twigobs::Phase::Match);
        let mut pass2 = xmldom::EventParser::new(xml);
        loop {
            cancel.check().map_err(SubscribeAbort::Query)?;
            match pass2.next_event() {
                Ok(Some(xmldom::Event::Start { label, .. })) => engine.on_start(label),
                Ok(Some(xmldom::Event::End {
                    elem,
                    label,
                    region,
                })) => engine.on_end(elem, label, region),
                Ok(None) => break,
                Err(e) => return Err(SubscribeAbort::Parse(e)),
            }
        }
    }
    Ok(engine.finish())
}

/// Run every subscription over an in-memory [`Document`] in one event
/// walk. Value predicates are supported (the document is the text
/// source). Results are in [`SubscriptionId`] order and equal to
/// [`evaluate`](crate::evaluate) per query.
pub fn run_subscriptions_doc(
    doc: &Document,
    auto: &SharedAutomaton,
    options: MatchOptions,
) -> (Vec<ResultSet>, SubRunStats) {
    let _span = twigobs::span(twigobs::Phase::Match);
    let mut engine = SubscriptionEngine::new(auto, doc.labels(), options).with_text_source(doc);
    for ev in xmldom::DocEvents::new(doc) {
        match ev {
            xmldom::Event::Start { label, .. } => engine.on_start(label),
            xmldom::Event::End {
                elem,
                label,
                region,
            } => engine.on_end(elem, label, region),
        }
    }
    engine.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate, evaluate_streaming};
    use gtpquery::parse_twig;
    use xmldom::parse;

    fn xml() -> &'static str {
        "<a><a><b><c/></b></a><b/><b><c/><c/></b><d><b><c/></b></d></a>"
    }

    #[test]
    fn shared_results_equal_solo_streaming() {
        let queries = [
            "//a/b[c]",
            "//a//b",
            "/a/b",
            "//*[c]",
            "//a!/b[c!]",
            "//a/b[?c@]",
            "//d//c",
        ];
        let auto = SharedAutomaton::build(queries.iter().map(|q| parse_twig(q).unwrap()).collect());
        let (results, stats) = run_subscriptions(xml(), &auto, MatchOptions::default()).unwrap();
        assert_eq!(results.len(), queries.len());
        for (i, q) in queries.iter().enumerate() {
            let gtp = parse_twig(q).unwrap();
            let (solo, _) = evaluate_streaming(xml(), &gtp, MatchOptions::default()).unwrap();
            assert_eq!(results[i], solo, "subscription {q} diverged from solo run");
        }
        // The filter actually filters: a 7-subscription sweep must feed
        // fewer (sub, element) pairs than the 7 * elements a solo
        // per-query sweep would.
        assert!(stats.matcher_feeds < stats.elements * queries.len() as u64);
    }

    #[test]
    fn dom_run_supports_value_predicates() {
        let doc = parse("<lib><book><year>2006</year></book><book><year>1999</year></book></lib>")
            .unwrap();
        let auto = SharedAutomaton::build(vec![
            parse_twig("//book[year='2006']").unwrap(),
            parse_twig("//book/year").unwrap(),
        ]);
        let (results, _) = run_subscriptions_doc(&doc, &auto, MatchOptions::default());
        for (i, gtp) in auto.queries().iter().enumerate() {
            assert_eq!(results[i], evaluate(&doc, gtp), "subscription {i}");
        }
        assert_eq!(results[0].len(), 1);
        assert_eq!(results[1].len(), 2);
    }

    #[test]
    fn prefix_merging_shares_states() {
        let a = SharedAutomaton::build(vec![parse_twig("//a/b/c").unwrap()]);
        let both = SharedAutomaton::build(vec![
            parse_twig("//a/b/c").unwrap(),
            parse_twig("//a/b/d").unwrap(),
        ]);
        // The second query adds exactly one state (the `d` leaf): the
        // `//a/b` prefix is shared.
        assert_eq!(both.state_count(), a.state_count() + 1);
    }

    #[test]
    fn rooted_queries_only_accept_level_one() {
        let auto = SharedAutomaton::build(vec![parse_twig("/b").unwrap()]);
        let (results, _) =
            run_subscriptions("<a><b/></a>", &auto, MatchOptions::default()).unwrap();
        assert!(results[0].is_empty(), "inner b is not the document root");
        let (results, _) =
            run_subscriptions("<b><a/></b>", &auto, MatchOptions::default()).unwrap();
        assert_eq!(results[0].len(), 1);
    }

    #[test]
    fn duplicate_registrations_are_independent() {
        let auto = SharedAutomaton::build(vec![
            parse_twig("//a//c").unwrap(),
            parse_twig("//a//c").unwrap(),
        ]);
        let (results, _) = run_subscriptions(xml(), &auto, MatchOptions::default()).unwrap();
        assert_eq!(results[0], results[1]);
        assert!(!results[0].is_empty());
    }

    #[test]
    fn empty_automaton_runs() {
        let auto = SharedAutomaton::build(Vec::new());
        assert!(auto.is_empty());
        let (results, stats) = run_subscriptions(xml(), &auto, MatchOptions::default()).unwrap();
        assert!(results.is_empty());
        assert_eq!(stats.matcher_feeds, 0);
    }

    #[test]
    fn cancellation_cuts_the_stream() {
        let auto = SharedAutomaton::build(vec![parse_twig("//a//b").unwrap()]);
        let cancel = CancelToken::new();
        cancel.cancel();
        let err =
            try_run_subscriptions(xml(), &auto, MatchOptions::default(), &cancel).unwrap_err();
        assert!(matches!(err, QueryError::Cancelled));
    }

    #[test]
    fn malformed_xml_surfaces_as_stream_error() {
        let auto = SharedAutomaton::build(vec![parse_twig("//a").unwrap()]);
        assert!(run_subscriptions("<a><b>", &auto, MatchOptions::default()).is_err());
        let err = try_run_subscriptions(
            "<a><b>",
            &auto,
            MatchOptions::default(),
            &CancelToken::never(),
        )
        .unwrap_err();
        assert!(matches!(err, QueryError::Stream(_)));
    }
}
