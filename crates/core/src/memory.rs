//! Runtime memory accounting for the hierarchical stacks (paper §5.4).
//!
//! Table 1 of the paper compares peak memory held by the encoding
//! structures with and without early result enumeration. [`MemoryMeter`]
//! tracks the *logical* live bytes reported by each [`crate::hstack::HierStack`]
//! (structures dropped by the §3.5 truncation or the §4.4 cleanup are
//! subtracted even where an arena retains its slot).

/// Running current/peak byte meter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryMeter {
    current: usize,
    peak: usize,
}

impl MemoryMeter {
    /// Fresh meter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the current total; updates the peak.
    pub fn sample(&mut self, current: usize) {
        self.current = current;
        if current > self.peak {
            self.peak = current;
        }
    }

    /// Latest sampled value.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Largest value ever sampled.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_peak() {
        let mut m = MemoryMeter::new();
        assert_eq!(m.peak(), 0);
        m.sample(100);
        m.sample(40);
        assert_eq!(m.current(), 40);
        assert_eq!(m.peak(), 100);
        m.sample(250);
        assert_eq!(m.peak(), 250);
    }
}
