//! Early result enumeration — the hybrid top-down/bottom-up mode
//! (paper §4.4).
//!
//! Pure bottom-up Twig²Stack can only enumerate once the document ends, so
//! its hierarchical stacks grow with the number of matches in the whole
//! document. The hybrid mode combines:
//!
//! * a **top-down PathStack pass** on element *opens*: an element enters
//!   the hierarchical machinery only if it also satisfies (an AD-relaxed
//!   check of) the prefix path from the query root — a strictly more
//!   stringent push condition; and
//! * a **trigger**: whenever the top-down stack of the query's *top branch
//!   node* empties (its outermost element closes), everything that will
//!   ever involve the just-closed subtree is enumerable *now* — results
//!   are emitted and every hierarchical stack is cleared.
//!
//! Query nodes strictly above the top branch node form a linear spine
//! whose matches are still *open* at trigger time; their assignments are
//! enumerated from the top-down stacks (the "hybrid of PathStack and
//! Twig²Stack enumeration" of Figure 12), exactness of parent-child spine
//! steps included. When a spine node above the top branch is a return
//! node, rows are grouped per spine assignment and flushed in document
//! order of those assignments at the end (the paper's "temporary space"
//! for the blocking case of Figure 12).
//!
//! Unsupported shapes fall back to pure bottom-up mode (see
//! [`EarlyUnsupported`]); [`evaluate_auto`] picks automatically.

use crate::edges::{EdgeLists, EdgeTarget};
use crate::enumerate::{compute_total_effects, enum_node, enumerate_view, PartialRow};
use crate::hstack::HierStack;
use crate::matcher::{MatchOptions, MatchView};
use crate::memory::MemoryMeter;
use crate::sot::{rebuild_sot, sot_of_hierstack, sot_preorder, Sot, SotNode};
use gtpquery::{Axis, Cell, Gtp, LabelDispatch, QNodeId, QueryAnalysis, ResultSet, Role};
use std::collections::BTreeMap;
use std::fmt;
use xmldom::{Document, Event, Label, LabelTable, NodeId, Region};

/// Why a query cannot use early result enumeration (fall back to the pure
/// bottom-up matcher).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EarlyUnsupported {
    /// Result enumeration is undefined for this query at all.
    NotEnumerable,
    /// The query has no output columns (boolean query).
    NoOutput,
    /// The query root itself is a group-return node: its single group row
    /// aggregates matches across the whole document, so no early trigger
    /// point exists.
    GroupRoot(QNodeId),
    /// A group-return node whose nearest return ancestor does not exist —
    /// its group spans the whole document and cannot be flushed early.
    GroupSpansTriggers(QNodeId),
    /// The trigger node is non-return and an *optional* edge sits on its
    /// chain down to the first output node: an empty match at one trigger
    /// would emit a null row even though another trigger has matches —
    /// only a document-wide view can decide that.
    OptionalBelowTrigger(QNodeId),
}

impl fmt::Display for EarlyUnsupported {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EarlyUnsupported::NotEnumerable => write!(f, "query is not enumerable"),
            EarlyUnsupported::NoOutput => write!(f, "query has no output columns"),
            EarlyUnsupported::GroupRoot(q) => {
                write!(f, "group-return query root {q} aggregates the whole document")
            }
            EarlyUnsupported::GroupSpansTriggers(q) => {
                write!(f, "group-return node {q} would aggregate across triggers")
            }
            EarlyUnsupported::OptionalBelowTrigger(q) => {
                write!(
                    f,
                    "optional edge at {q} on the non-return trigger node's output chain"
                )
            }
        }
    }
}

impl std::error::Error for EarlyUnsupported {}

/// Counters reported by the early matcher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EarlyStats {
    /// Number of times results were flushed and stacks cleared.
    pub triggers: usize,
    /// Elements pushed into hierarchical stacks.
    pub elements_pushed: usize,
    /// Elements rejected by the top-down prefix gate.
    pub gate_rejections: usize,
    /// Peak logical bytes held by the hierarchical + top-down stacks.
    pub peak_bytes: usize,
    /// Result rows produced.
    pub rows: usize,
}

/// One open element on a top-down stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TElem {
    node: NodeId,
    left: u32,
    level: u32,
}

const TELEM_BYTES: usize = std::mem::size_of::<TElem>();

/// The hybrid matcher. Feed it [`Event`]s in document order and call
/// [`EarlyMatcher::finish`].
pub struct EarlyMatcher<'g> {
    gtp: &'g Gtp,
    analysis: QueryAnalysis,
    dispatch: LabelDispatch,
    /// Query nodes root..=top_branch.
    spine: Vec<QNodeId>,
    /// Spine positions of the *upper* output (return) columns, and their
    /// column indices — the grouping key.
    upper_key_cols: Vec<usize>,
    tb: QNodeId,
    /// Top-down PathStack stacks, one per query node.
    tstacks: Vec<Vec<TElem>>,
    /// Hierarchical stacks; maintained only for `below` nodes.
    hstacks: Vec<HierStack>,
    /// Open elements with the query nodes they were gated into.
    open: Vec<(NodeId, Vec<QNodeId>)>,
    /// Pending rows grouped by upper-spine key (flushed at finish).
    groups: BTreeMap<Vec<NodeId>, Vec<Vec<Cell>>>,
    scratch: Vec<Vec<EdgeTarget>>,
    /// Text source for value predicates.
    text: Option<&'g Document>,
    meter: MemoryMeter,
    stats: EarlyStats,
}

impl<'g> EarlyMatcher<'g> {
    /// Create a hybrid matcher, or report why the query needs the pure
    /// bottom-up mode.
    pub fn new(
        gtp: &'g Gtp,
        labels: &LabelTable,
        options: MatchOptions,
    ) -> Result<Self, EarlyUnsupported> {
        let analysis = QueryAnalysis::new(gtp);
        if !analysis.enumerable() {
            return Err(EarlyUnsupported::NotEnumerable);
        }
        if analysis.columns().is_empty() {
            return Err(EarlyUnsupported::NoOutput);
        }
        // Choose the trigger node: start at the first branching node (or
        // the leaf of a linear query) and walk up while the configuration
        // is unusable — an optional incoming edge at tb (spine steps must
        // be mandatory), a group-return node at or above tb (it would
        // aggregate across triggers), or a group node below tb without a
        // return-node scope at or below tb (its list would span triggers).
        // Walking up only coarsens trigger granularity, never correctness;
        // in the worst case tb reaches the query root (the paper's Figure
        // 13 right-hand case, where early enumeration degrades
        // gracefully). Only document-spanning groups are fatal.
        let mut tb = analysis.top_branch();
        loop {
            // (a) tb itself: mandatory incoming edge, non-group role.
            if gtp.role(tb) == Role::GroupReturn {
                match gtp.parent(tb) {
                    Some(p) => {
                        tb = p;
                        continue;
                    }
                    None => return Err(EarlyUnsupported::GroupRoot(tb)),
                }
            }
            // The whole spine root..=tb must be mandatory: an optional
            // step anywhere above would make upper assignments nullable,
            // which the spine enumeration does not model. Hop above the
            // highest optional edge.
            if let Some(v) = std::iter::successors(Some(tb), |&n| gtp.parent(n))
                .filter(|&n| gtp.edge(n).is_some_and(|e| e.optional))
                .last()
            {
                tb = gtp.parent(v).expect("non-root has a parent");
                continue;
            }
            // (b) no group-return node strictly above tb.
            if let Some(g) = ancestors(gtp, tb).find(|&a| gtp.role(a) == Role::GroupReturn) {
                tb = g; // case (a) will walk past it (or fail at the root)
                continue;
            }
            // No value predicate strictly above tb: upper-spine elements
            // still open at trigger time are enumerated straight from the
            // top-down stacks, which only gate on ancestry — a text
            // predicate there would never be evaluated. Raising tb to the
            // highest such node means its elements are closed (and
            // predicate-filtered by MatchOneNode) before any trigger.
            if let Some(v) = ancestors(gtp, tb)
                .filter(|&a| gtp.value_pred(a).is_some())
                .last()
            {
                tb = v;
                continue;
            }
            // (c) every group node below tb is scoped by a return node at
            // or below tb.
            let unscoped = gtp.iter().find(|&g| {
                gtp.role(g) == Role::GroupReturn && g != tb && !group_scoped(gtp, g, tb)
            });
            if let Some(g) = unscoped {
                match gtp.parent(tb) {
                    Some(p) => {
                        tb = p;
                        continue;
                    }
                    None => return Err(EarlyUnsupported::GroupSpansTriggers(g)),
                }
            }
            break;
        }
        // If tb is a non-return node, its union semantics span all its
        // elements; per-trigger evaluation is only equivalent when the
        // chain down to the first output node is mandatory (each trigger
        // then provably contributes matches, so no per-trigger null rows
        // can arise).
        {
            let mut n = tb;
            while gtp.role(n) == Role::NonReturn && analysis.has_output_below(n) {
                let Some(&child) = gtp
                    .children(n)
                    .iter()
                    .find(|&&c| analysis.has_output_below(c))
                else {
                    break;
                };
                if gtp.edge(child).expect("child edge").optional {
                    return Err(EarlyUnsupported::OptionalBelowTrigger(child));
                }
                n = child;
            }
        }
        // The spine root..=tb.
        let mut spine = vec![tb];
        let mut cur = tb;
        while let Some(p) = gtp.parent(cur) {
            spine.push(p);
            cur = p;
        }
        spine.reverse();

        let upper_key_cols = spine[..spine.len() - 1]
            .iter()
            .filter(|&&q| gtp.role(q) == Role::Return)
            .map(|&q| analysis.column_of(q).expect("return node is a column"))
            .collect();

        let dispatch = LabelDispatch::compile(gtp, labels);
        let hstacks = gtp
            .iter()
            .map(|q| {
                HierStack::new(
                    options.existence_opt && analysis.is_existence_checking(q),
                )
            })
            .collect();
        let max_children = gtp.iter().map(|q| gtp.children(q).len()).max().unwrap_or(0);
        Ok(EarlyMatcher {
            gtp,
            analysis,
            dispatch,
            spine,
            upper_key_cols,
            tb,
            tstacks: vec![Vec::new(); gtp.len()],
            hstacks,
            open: Vec::new(),
            groups: BTreeMap::new(),
            scratch: vec![Vec::new(); max_children],
            text: None,
            meter: MemoryMeter::new(),
            stats: EarlyStats::default(),
        })
    }

    /// Provide the document as a text source for value predicates.
    pub fn with_text_source(mut self, doc: &'g Document) -> Self {
        self.text = Some(doc);
        self
    }

    /// Process one parse event.
    pub fn on_event(&mut self, ev: Event) {
        match ev {
            Event::Start { elem, label, left, level } => self.on_start(elem, label, left, level),
            Event::End { elem, label, region } => self.on_end(elem, label, region),
        }
    }

    fn on_start(&mut self, elem: NodeId, label: Label, left: u32, level: u32) {
        let qnodes = self.dispatch.query_nodes(label);
        let mut pushed = Vec::new();
        for i in 0..qnodes.len() {
            let q = self.dispatch.query_nodes(label)[i];
            // PathStack gate (AD-relaxed): a proper ancestor must be open
            // on the parent's top-down stack; the root checks anchoring.
            let ok = match self.gtp.parent(q) {
                None => !self.gtp.is_rooted() || level == 1,
                Some(p) => self.tstacks[p.index()]
                    .first()
                    .is_some_and(|t| t.left < left),
            };
            if ok {
                twigobs::bump(twigobs::Counter::StackPushes);
                self.tstacks[q.index()].push(TElem { node: elem, left, level });
                pushed.push(q);
            } else {
                self.stats.gate_rejections += 1;
            }
        }
        self.open.push((elem, pushed));
    }

    fn on_end(&mut self, elem: NodeId, _label: Label, region: Region) {
        let Some((open_elem, pushed)) = self.open.pop() else {
            debug_assert!(false, "unbalanced end event");
            return;
        };
        debug_assert_eq!(open_elem, elem);
        // Bottom-up matching for every gated node (parents-first:
        // dispatch order is topological). Upper-spine labels recurring
        // inside a top-branch subtree close before the trigger and must be
        // enumerable from their hierarchical stacks (paper Figure 12).
        for &q in &pushed {
            self.match_one_node(elem, region, q);
        }
        // Pop the top-down stacks; fire the trigger when the top branch
        // node's stack empties.
        let mut tb_popped = false;
        for &q in &pushed {
            let top = self.tstacks[q.index()].pop();
            debug_assert_eq!(top.map(|t| t.node), Some(elem));
            if q == self.tb {
                tb_popped = true;
            }
        }
        if tb_popped && self.tstacks[self.tb.index()].is_empty() {
            self.trigger();
        }
        self.sample();
    }

    /// Paper `MatchOneNode` (Figure 7), identical to the pure matcher.
    fn match_one_node(&mut self, node: NodeId, region: Region, q: QNodeId) {
        if let Some(pred) = self.gtp.value_pred(q) {
            let doc = self.text.unwrap_or_else(|| {
                panic!("query has value predicates; a text source is required")
            });
            if !pred.matches(doc.text(node)) {
                return;
            }
        }
        let children = self.gtp.children(q);
        // Mandatory steps grouped by OR-group (paper §3.3.3, AND/OR
        // twigs): every member is merged (cost maintenance), each group
        // contributes the OR of its checks, the node needs every group.
        let mut satisfied = true;
        'groups: for group in self.analysis.mandatory_groups(q) {
            let mut any = false;
            for &j in group {
                let mj = children[j];
                let ej = self.gtp.edge(mj).expect("child edge");
                self.scratch[j].clear();
                let mut buf = std::mem::take(&mut self.scratch[j]);
                any |= self.hstacks[mj.index()].merge_check(&region, ej.axis, &mut buf);
                self.scratch[j] = buf;
            }
            if !any {
                satisfied = false;
                break 'groups;
            }
        }
        if !satisfied {
            return;
        }
        for (i, &m) in children.iter().enumerate() {
            let edge = self.gtp.edge(m).expect("child edge");
            if !edge.optional {
                continue;
            }
            self.scratch[i].clear();
            let mut buf = std::mem::take(&mut self.scratch[i]);
            self.hstacks[m.index()].merge_check(&region, edge.axis, &mut buf);
            self.scratch[i] = buf;
        }
        let edges = if children.is_empty()
            || self.scratch[..children.len()].iter().all(Vec::is_empty)
        {
            EdgeLists::empty()
        } else {
            // Clone (exact-size) rather than take, so the scratch buffers
            // keep their capacity across elements.
            EdgeLists::new(
                self.scratch[..children.len()]
                    .iter()
                    .map(|v| v.to_vec())
                    .collect(),
            )
        };
        self.hstacks[q.index()].push(node, region, edges);
        self.stats.elements_pushed += 1;
    }

    fn sample(&mut self) {
        let h: usize = self.hstacks.iter().map(HierStack::live_bytes).sum();
        let t: usize = self
            .tstacks
            .iter()
            .map(|s| s.len() * TELEM_BYTES)
            .sum();
        self.meter.sample(h + t);
    }

    /// Enumerate everything involving the just-closed top-branch subtree,
    /// then clear all hierarchical stacks.
    fn trigger(&mut self) {
        self.stats.triggers += 1;
        let _span = twigobs::span(twigobs::Phase::Enumerate);
        let view = MatchView {
            gtp: self.gtp,
            analysis: &self.analysis,
            stacks: &self.hstacks,
        };
        let root_q = self.spine[0];
        let root_opens: Vec<TElem> = self.tstacks[root_q.index()].clone();
        let root_closed = sot_of_hierstack(&self.hstacks[root_q.index()]);
        let rows = enum_spine(
            &view,
            &self.spine,
            0,
            &root_opens,
            &root_closed,
            &self.tstacks,
        );
        let dedup = !self.analysis.has_output_below(self.tb);
        for row in rows {
            let key: Vec<NodeId> = self
                .upper_key_cols
                .iter()
                .map(|&c| match row[c] {
                    Cell::Node(n) => n,
                    _ => unreachable!("upper key columns are plain return nodes"),
                })
                .collect();
            let entry = self.groups.entry(key).or_default();
            // Rows without output at or below tb are fully determined by
            // the key; keep one per group.
            if dedup && !entry.is_empty() {
                continue;
            }
            entry.push(row);
        }
        for hs in &mut self.hstacks {
            hs.clear();
        }
        self.sample();
    }

    /// Flush pending groups (in document order of the upper-spine keys)
    /// and return the results.
    pub fn finish(mut self) -> (ResultSet, EarlyStats) {
        self.stats.peak_bytes = self.meter.peak();
        let mut rs = ResultSet::new(self.analysis.columns().to_vec());
        for (_, rows) in std::mem::take(&mut self.groups) {
            for row in rows {
                rs.push(row);
            }
        }
        self.stats.rows = rs.len();
        twigobs::add(twigobs::Counter::ResultsEnumerated, rs.len() as u64);
        (rs, self.stats)
    }
}

/// Iterator over the proper ancestors of `q` in the query tree.
fn ancestors(gtp: &Gtp, q: QNodeId) -> impl Iterator<Item = QNodeId> + '_ {
    std::iter::successors(gtp.parent(q), move |&p| gtp.parent(p))
}

/// Is group node `g` scoped by a return node on the path from its parent
/// up to `tb` (inclusive)? If so, its group list never spans triggers.
fn group_scoped(gtp: &Gtp, g: QNodeId, tb: QNodeId) -> bool {
    let mut cur = gtp.parent(g);
    while let Some(p) = cur {
        if gtp.role(p) == Role::Return {
            return true;
        }
        if p == tb {
            return false;
        }
        cur = gtp.parent(p);
    }
    false
}

/// Enumerate the spine level `i`, whose candidate matches split into
/// *open* elements (still on the top-down stacks — ancestors of the
/// just-closed subtree) and *closed* elements (inside that subtree, fully
/// encoded in the hierarchical stacks with result edges). Opens always
/// precede closeds in document order, and the closed world is handled by
/// the standard `EnumTwig²Stack` machinery.
fn enum_spine(
    view: &MatchView<'_>,
    spine: &[QNodeId],
    i: usize,
    opens: &[TElem],
    closed: &Sot,
    tstacks: &[Vec<TElem>],
) -> Vec<PartialRow> {
    let gtp = view.gtp;
    let analysis = view.analysis;
    if i == spine.len() - 1 {
        // Top branch level: its top-down stack just emptied (that is the
        // trigger condition), so every candidate is closed.
        debug_assert!(opens.is_empty(), "tb has no open elements at trigger time");
        if closed.is_empty() {
            return Vec::new();
        }
        return descend_tb(view, spine[i], closed);
    }
    let q = spine[i];
    match gtp.role(q) {
        Role::Return => {
            let col = analysis.column_of(q).expect("return node is a column");
            let mut rows = Vec::new();
            for u in opens {
                let next_opens = open_candidates(gtp, spine[i + 1], u, tstacks);
                let next_closed = closed_from_open(view, gtp, spine[i + 1], u);
                for mut row in
                    enum_spine(view, spine, i + 1, &next_opens, &next_closed, tstacks)
                {
                    row[col] = Cell::Node(u.node);
                    rows.push(row);
                }
            }
            // Closed matches of this spine node follow all opens in
            // document order and are fully edge-encoded.
            if !closed.is_empty() {
                rows.extend(enum_node(view, q, closed));
            }
            rows
        }
        Role::NonReturn => {
            // Total effects: union the next-level candidates over all
            // elements (open and closed), deduplicated.
            let mut next_opens: Vec<TElem> = Vec::new();
            let mut next_closed_nodes: Vec<SotNode> = Vec::new();
            for u in opens {
                for t in open_candidates(gtp, spine[i + 1], u, tstacks) {
                    if !next_opens.iter().any(|x| x.node == t.node) {
                        next_opens.push(t);
                    }
                }
                next_closed_nodes.extend(closed_from_open(view, gtp, spine[i + 1], u));
            }
            // Closed-world contribution via result edges (Figure 10).
            next_closed_nodes.extend(compute_total_effects(view, closed, q, 0));
            let next_closed = rebuild_sot(next_closed_nodes);
            next_opens.sort_by_key(|t| t.left);
            if next_opens.is_empty() && next_closed.is_empty() {
                return Vec::new();
            }
            enum_spine(view, spine, i + 1, &next_opens, &next_closed, tstacks)
        }
        Role::GroupReturn => unreachable!("groups on the spine are rejected"),
    }
}

/// Open elements of spine node `q` compatible with open parent `u`. All
/// open elements lie on one root path, so descendant-of-`u` is just
/// `left > u.left`.
fn open_candidates(gtp: &Gtp, q: QNodeId, u: &TElem, tstacks: &[Vec<TElem>]) -> Vec<TElem> {
    let pc = gtp.edge(q).expect("spine edge").axis == Axis::Child;
    tstacks[q.index()]
        .iter()
        .filter(|t| t.left > u.left && (!pc || t.level == u.level + 1))
        .copied()
        .collect()
}

/// Closed elements of spine node `q` compatible with *open* parent `u`.
/// Every closed element lies inside the just-closed subtree, which every
/// open element contains, so AD is free; PC filters by level (flattening
/// is sound: equal-level elements are pairwise disjoint, exactly what
/// `pointPC` produces in pure mode).
fn closed_from_open(view: &MatchView<'_>, gtp: &Gtp, q: QNodeId, u: &TElem) -> Sot {
    let sot = sot_of_hierstack(view.stack(q));
    match gtp.edge(q).expect("spine edge").axis {
        Axis::Descendant => sot,
        Axis::Child => sot_preorder(&sot)
            .into_iter()
            .filter(|s| s.region.level == u.level + 1)
            .map(|s| SotNode { children: Vec::new(), ..s.clone() })
            .collect(),
    }
}

/// Enumerate at and below the trigger node `tb` via `EnumTwig²Stack`.
/// When nothing at or below it is an output node, a single empty row
/// witnesses existence.
fn descend_tb(view: &MatchView<'_>, tb: QNodeId, cands: &Sot) -> Vec<PartialRow> {
    let width = view.analysis.columns().len();
    if !view.analysis.has_output_below(tb) {
        return vec![vec![Cell::Null; width]];
    }
    enum_node(view, tb, cands)
}

/// Run the hybrid matcher over an in-memory document.
pub fn evaluate_early<'g>(
    doc: &'g Document,
    gtp: &'g Gtp,
    options: MatchOptions,
) -> Result<(ResultSet, EarlyStats), EarlyUnsupported> {
    let mut m = EarlyMatcher::new(gtp, doc.labels(), options)?.with_text_source(doc);
    {
        let _span = twigobs::span(twigobs::Phase::Match);
        for ev in xmldom::DocEvents::new(doc) {
            m.on_event(ev);
        }
    }
    Ok(m.finish())
}

/// Evaluate with early result enumeration when the query shape allows it,
/// falling back to pure bottom-up matching otherwise.
pub fn evaluate_auto(doc: &Document, gtp: &Gtp, options: MatchOptions) -> ResultSet {
    match evaluate_early(doc, gtp, options) {
        Ok((rs, _)) => rs,
        Err(_) => {
            let (tm, _) = crate::matcher::match_document(doc, gtp, options);
            enumerate_view(&tm.view())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtpquery::parse_twig;
    use twigbaselines::naive_evaluate;
    use xmldom::parse;

    fn check(xml: &str, query: &str) {
        let doc = parse(xml).unwrap();
        let gtp = parse_twig(query).unwrap();
        let expected = naive_evaluate(&doc, &gtp);
        let (got, stats) =
            evaluate_early(&doc, &gtp, MatchOptions::default()).unwrap_or_else(|e| {
                panic!("query {query} unexpectedly unsupported: {e}");
            });
        assert_eq!(got, expected, "query {query} on {xml}");
        assert_eq!(stats.rows, expected.len());
    }

    const FIG1: &str = "<a><a><a><b><c/><d/></b></a><b><a><b><c/><d><d/></d></b></a><c/></b></a>\
                        <b><d/></b></a>";

    #[test]
    fn figure1_queries() {
        check(FIG1, "//a/b[//d][c]");
        check(FIG1, "//a!/b[//d!][c!]");
        check(FIG1, "//a!/b![//d][c!]");
    }

    #[test]
    fn triggers_fire_per_record() {
        // DBLP-style: one trigger per inproceedings.
        let xml = "<dblp><inproceedings><title/><author/></inproceedings>\
                   <inproceedings><title/><author/><author/></inproceedings>\
                   <inproceedings><author/></inproceedings></dblp>";
        let doc = parse(xml).unwrap();
        let gtp = parse_twig("//dblp!/inproceedings[title!]/author").unwrap();
        let (rs, stats) = evaluate_early(&doc, &gtp, MatchOptions::default()).unwrap();
        assert_eq!(rs, naive_evaluate(&doc, &gtp));
        assert_eq!(stats.triggers, 3);
        // Memory stays bounded by one record, far below the total pushed.
        assert!(stats.peak_bytes > 0);
    }

    #[test]
    fn return_node_above_top_branch_is_reordered() {
        // dblp is a return node above the top branch (inproceedings):
        // rows must still come out in oracle order.
        let xml = "<r><dblp><inproceedings><title/><author/></inproceedings>\
                   <inproceedings><title/><author/></inproceedings></dblp>\
                   <dblp><inproceedings><title/><author/></inproceedings></dblp></r>";
        check(xml, "//dblp/inproceedings[title]/author");
        check(xml, "//dblp/inproceedings[title!]/author");
    }

    #[test]
    fn nested_upper_spine_matches() {
        let xml = "<a><a><p><x/><y/></p></a><p><x/><y/></p></a>";
        check(xml, "//a/p[x]/y");
        check(xml, "//a//p[x]/y");
        check(xml, "//a!//p[x]/y");
        check(xml, "//a!/p[x]/y");
    }

    #[test]
    fn linear_query_top_branch_is_leaf() {
        let xml = "<a><b><c/></b><b/></a>";
        check(xml, "//a/b/c");
        check(xml, "//a!/b!/c");
        check(xml, "//a//c");
    }

    #[test]
    fn groups_scoped_within_trigger() {
        let xml = "<r><p><x/><x/></p><p><x/></p><p/></r>";
        check(xml, "//p[?x@]");
        check(xml, "//r!/p[?x@]");
    }

    #[test]
    fn existence_only_below_tb() {
        // Only the upper spine returns; tb subtree is existence-checking.
        let xml = "<r><p><x/><y/></p><p><x/></p></r>";
        check(xml, "//r/p![x!][y!]");
    }

    #[test]
    fn unsupported_shapes_are_reported() {
        let doc = parse("<a><b/></a>").unwrap();
        let labels = doc.labels();
        // Boolean query.
        let g = parse_twig("//a!/b!").unwrap();
        assert_eq!(
            EarlyMatcher::new(&g, labels, MatchOptions::default()).err(),
            Some(EarlyUnsupported::NoOutput)
        );
        // Group at the query root spans the whole document.
        let g = parse_twig("//a@/b!").unwrap();
        assert!(matches!(
            EarlyMatcher::new(&g, labels, MatchOptions::default()).err(),
            Some(EarlyUnsupported::GroupRoot(_))
        ));
        // Group with no return-node scope anywhere above it.
        let g = parse_twig("//a!/b![c!][.//d@]").unwrap();
        assert!(matches!(
            EarlyMatcher::new(&g, labels, MatchOptions::default()).err(),
            Some(EarlyUnsupported::GroupSpansTriggers(_))
        ));
    }

    #[test]
    fn trigger_node_walks_up_past_awkward_shapes() {
        // Optional edge below the branch point: tb moves up and the query
        // still runs early.
        let xml = "<a><b><c/><d/></b><b><c/></b></a>";
        check(xml, "//a/?b[c][?d]");
        // Group above the original trigger node: tb moves to its parent.
        check(xml, "//a/b@[c!]");
        check(xml, "//a/b[c][?d@]");
    }

    #[test]
    fn auto_falls_back() {
        let doc = parse("<a><b><c/><d/></b></a>").unwrap();
        let gtp = parse_twig("//a!/b![c!][.//d@]").unwrap();
        let rs = evaluate_auto(&doc, &gtp, MatchOptions::default());
        assert_eq!(rs, naive_evaluate(&doc, &gtp));
    }

    #[test]
    fn rooted_queries() {
        let xml = "<a><a><b><c/></b></a><b><c/></b></a>";
        check(xml, "/a/b[c]");
        check(xml, "/a//b[c]");
    }

    #[test]
    fn recursive_tb_elements() {
        // //p[x] is linear, so the trigger node is the leaf x: one trigger
        // per x element, and the nested p's are enumerated from a mix of
        // open (top-down) and closed (hierarchical) candidates.
        let xml = "<r><p><p><x/></p><x/></p></r>";
        let doc = parse(xml).unwrap();
        let gtp = parse_twig("//p[x]").unwrap();
        let (rs, stats) = evaluate_early(&doc, &gtp, MatchOptions::default()).unwrap();
        assert_eq!(rs, naive_evaluate(&doc, &gtp));
        assert_eq!(stats.triggers, 2);
        // A branching query over the same data triggers on p itself:
        // nested p's share the outermost close.
        let gtp2 = parse_twig("//p[p][x]").unwrap();
        let (rs2, stats2) = evaluate_early(&doc, &gtp2, MatchOptions::default()).unwrap();
        assert_eq!(rs2, naive_evaluate(&doc, &gtp2));
        assert_eq!(stats2.triggers, 1);
    }
}
