//! Result edges between hierarchical stacks.
//!
//! When a query step `E → M` is satisfied by an element `e`, the paper
//! records edges from `e` to the matched stack trees of `HS[M]` (Figure 6
//! lines 7/10). The two edge kinds correspond to the two axes:
//!
//! * a **PC** edge points at one concrete element — the top of a root stack
//!   whose level matched (`pointPC` reads these directly);
//! * an **AD** edge points at a whole stack tree — *every* element inside
//!   is a descendant of `e` (`pointAD` expands the tree lazily).
//!
//! Both reference `(stack id, element index)` locations, which stay valid
//! forever because merging never moves elements between stacks.

use crate::hstack::SId;

/// One result edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeTarget {
    /// AD edge: the elements `0..upto` of the root stack plus everything
    /// in its descendant stacks qualify.
    ///
    /// `upto` freezes the root stack's height at edge-creation time: the
    /// paper's edge points at `ST.top`, and elements pushed onto the same
    /// stack *later* are ancestors of the edge's source, not descendants.
    /// (Descendant stacks are immutable after losing root status, so only
    /// the root stack needs the bound.)
    Subtree {
        /// Root stack of the matched tree.
        root: SId,
        /// Number of root-stack elements covered (its height at creation).
        upto: u32,
    },
    /// PC edge: exactly this element qualifies.
    Element(SId, u32),
}

impl EdgeTarget {
    /// An AD edge to a stack tree whose root stack currently holds `upto`
    /// elements.
    #[inline]
    pub fn subtree(root: SId, upto: u32) -> Self {
        EdgeTarget::Subtree { root, upto }
    }

    /// A PC edge to one element.
    #[inline]
    pub fn element(stack: SId, index: u32) -> Self {
        EdgeTarget::Element(stack, index)
    }
}

/// Per-element edge storage: one list of targets per child query node, in
/// the child order of the owning query node.
///
/// Lists are kept in ascending document order — the order the merge walk
/// records them in (it scans root trees left to right).
#[derive(Debug, Clone, Default)]
pub struct EdgeLists {
    lists: Box<[Vec<EdgeTarget>]>,
}

impl EdgeLists {
    /// No edges at all (leaf query nodes, existence-checking mode).
    pub fn empty() -> Self {
        EdgeLists::default()
    }

    /// Take ownership of per-child edge lists (each already in ascending
    /// document order). Capacities are kept as-is: shrinking would cost a
    /// reallocation per pushed element on the matching hot path.
    pub fn new(lists: Vec<Vec<EdgeTarget>>) -> Self {
        EdgeLists { lists: lists.into_boxed_slice() }
    }

    /// Edges for the `i`-th child query node (empty if none recorded).
    pub fn for_child(&self, i: usize) -> &[EdgeTarget] {
        self.lists.get(i).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of edges across all children.
    pub fn total_edges(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// Shift every target's stack id: list `i` (edges into the `i`-th
    /// child query node's stack) moves up by `offsets[i]`. Used when a
    /// parallel chunk's arenas are spliced after another arena's nodes.
    pub(crate) fn remap(&mut self, offsets: &[u32]) {
        for (list, &off) in self.lists.iter_mut().zip(offsets) {
            if off == 0 {
                continue;
            }
            for t in list {
                match t {
                    EdgeTarget::Subtree { root, .. } => root.0 += off,
                    EdgeTarget::Element(stack, _) => stack.0 += off,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_lists() {
        let e = EdgeLists::empty();
        assert_eq!(e.total_edges(), 0);
        assert!(e.for_child(0).is_empty());
        assert!(e.for_child(7).is_empty());
    }

    #[test]
    fn new_preserves_document_order() {
        let e = EdgeLists::new(vec![
            vec![EdgeTarget::subtree(SId(2), 1), EdgeTarget::subtree(SId(5), 0)],
            vec![EdgeTarget::element(SId(9), 1)],
        ]);
        assert_eq!(
            e.for_child(0),
            &[
                EdgeTarget::Subtree { root: SId(2), upto: 1 },
                EdgeTarget::Subtree { root: SId(5), upto: 0 }
            ]
        );
        assert_eq!(e.for_child(1), &[EdgeTarget::Element(SId(9), 1)]);
        assert_eq!(e.total_edges(), 3);
    }
}
