//! # twig2stack — hierarchical-stack twig matching (VLDB 2006)
//!
//! A faithful implementation of *Twig²Stack: Bottom-up Processing of
//! Generalized-Tree-Pattern Queries over XML Documents* (Chen et al.,
//! VLDB 2006):
//!
//! * [`hstack`] — hierarchical stacks and the merge operation (§3.2),
//!   including the existence-checking truncation (§3.5);
//! * [`edges`] — result edges between hierarchical stacks;
//! * [`matcher`] — the bottom-up matching algorithm (§3.3, Figure 7);
//! * [`sot`] — sequence-of-trees structures (§4.1);
//! * [`enumerate()`] — duplicate-free, document-ordered GTP result
//!   enumeration (§4.2–4.3, Figures 10–11);
//! * [`count`] — O(encoding) result counting over the factorized
//!   representation, without materializing tuples;
//! * [`early`] — the hybrid PathStack + Twig²Stack mode with early result
//!   enumeration (§4.4);
//! * [`memory`] — runtime memory accounting (§5.4, Table 1);
//! * [`parallel`] — partitioned multi-threaded evaluation with a serial
//!   spine replay (exactly equivalent to the serial matcher);
//! * [`pruned`] — index-backed evaluation over path-summary-pruned,
//!   skip-capable element streams (byte-identical results, fewer reads).
//!
//! ## Quick start
//!
//! ```
//! use gtpquery::parse_twig;
//! use twig2stack::evaluate;
//! use xmldom::parse;
//!
//! let doc = parse("<dblp><inproceedings><title/><author/></inproceedings></dblp>").unwrap();
//! let gtp = parse_twig("//dblp/inproceedings[title]/author").unwrap();
//! let results = evaluate(&doc, &gtp);
//! assert_eq!(results.len(), 1);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod count;
pub mod early;
pub mod edges;
pub mod enumerate;
pub mod hstack;
pub mod matcher;
pub mod memory;
pub mod parallel;
pub mod pruned;
pub mod sot;
pub mod subscribe;

pub use context::EvalContext;
pub use count::count_results;
pub use early::{evaluate_auto, evaluate_early, EarlyMatcher, EarlyStats, EarlyUnsupported};
pub use enumerate::enumerate;
pub use matcher::{match_document, MatchOptions, MatchStats, Matcher, TwigMatch};
pub use memory::MemoryMeter;
pub use parallel::{
    evaluate_parallel, match_document_parallel, parallel_plan, FallbackReason, ParallelPlan,
};
pub use pruned::{
    evaluate_indexed, match_indexed, try_match_indexed, try_match_indexed_group, try_match_streams,
    IndexedPlan,
};
pub use subscribe::{
    run_subscriptions, run_subscriptions_doc, try_run_subscriptions, SharedAutomaton, SubRunStats,
    SubscriptionEngine, SubscriptionId,
};

use gtpquery::{CancelToken, Gtp, QueryError, ResultSet};
use xmldom::Document;

/// Match and enumerate in one call with default options.
pub fn evaluate(doc: &Document, gtp: &Gtp) -> ResultSet {
    let (tm, _) = match_document(doc, gtp, MatchOptions::default());
    enumerate(&tm)
}

/// Match and enumerate a raw XML string without materializing a DOM — the
/// paper's streaming mode (§7): start tags arrive in pre-order, end tags
/// in post-order, which is exactly the traversal Figure 7 needs.
pub fn evaluate_streaming(
    xml: &str,
    gtp: &Gtp,
    options: MatchOptions,
) -> Result<(ResultSet, MatchStats), xmldom::ParseError> {
    match streaming_impl(xml, gtp, options, &CancelToken::never()) {
        Ok(out) => Ok(out),
        Err(subscribe::SubscribeAbort::Parse(e)) => Err(e),
        Err(subscribe::SubscribeAbort::Query(_)) => {
            unreachable!("the never-token cannot cancel")
        }
    }
}

/// [`evaluate_streaming`] under a cooperative [`CancelToken`], polled at
/// tag granularity like the indexed drivers behind `gtpquery::exec` —
/// a deadline or cancellation mid-stream unwinds with the typed
/// [`QueryError`] instead of running to completion. Malformed XML
/// surfaces as [`QueryError::Stream`] (the event source died mid-scan).
///
/// ```
/// use gtpquery::{parse_twig, CancelToken, QueryError};
/// use twig2stack::{try_evaluate_streaming, MatchOptions};
///
/// let gtp = parse_twig("//a/b").unwrap();
/// let token = CancelToken::new();
/// token.cancel();
/// let err = try_evaluate_streaming("<a><b/></a>", &gtp, MatchOptions::default(), &token)
///     .unwrap_err();
/// assert!(matches!(err, QueryError::Cancelled));
/// ```
pub fn try_evaluate_streaming(
    xml: &str,
    gtp: &Gtp,
    options: MatchOptions,
    cancel: &CancelToken,
) -> Result<(ResultSet, MatchStats), QueryError> {
    streaming_impl(xml, gtp, options, cancel).map_err(subscribe::SubscribeAbort::into_query)
}

fn streaming_impl(
    xml: &str,
    gtp: &Gtp,
    options: MatchOptions,
    cancel: &CancelToken,
) -> Result<(ResultSet, MatchStats), subscribe::SubscribeAbort> {
    use subscribe::SubscribeAbort as Abort;
    assert!(
        !gtp.has_value_preds(),
        "value predicates need element text, which the structure-only \
         stream drops; use match_document over a DOM instead"
    );
    // Labels are interned on the fly; the dispatch table must exist before
    // matching, so run a first lightweight pass for labels only. (A real
    // stream processor would intern lazily; two passes keep this simple
    // and still never build a DOM.)
    let labels = {
        let _span = twigobs::span(twigobs::Phase::Parse);
        let mut pass1 = xmldom::EventParser::new(xml);
        loop {
            cancel.check().map_err(Abort::Query)?;
            match pass1.next_event() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => return Err(Abort::Parse(e)),
            }
        }
        pass1.into_labels()
    };

    let mut matcher = Matcher::new(gtp, &labels, options);
    {
        let _span = twigobs::span(twigobs::Phase::Match);
        let mut pass2 = xmldom::EventParser::new(xml);
        loop {
            cancel.check().map_err(Abort::Query)?;
            match pass2.next_event() {
                // Both passes intern labels in first-seen order, so ids align.
                Ok(Some(xmldom::Event::End {
                    elem,
                    label,
                    region,
                })) => matcher.on_element_close(elem, label, region),
                Ok(Some(xmldom::Event::Start { .. })) => {}
                Ok(None) => break,
                Err(e) => return Err(Abort::Parse(e)),
            }
        }
    }
    let (tm, stats) = matcher.finish();
    Ok((enumerate(&tm), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtpquery::parse_twig;
    use twigbaselines::naive_evaluate;
    use xmldom::parse;

    #[test]
    fn evaluate_matches_oracle() {
        let doc = parse("<a><b><c/></b><b/></a>").unwrap();
        let gtp = parse_twig("//a/b[c]").unwrap();
        assert_eq!(evaluate(&doc, &gtp), naive_evaluate(&doc, &gtp));
    }

    #[test]
    fn streaming_matches_dom_evaluation() {
        let xml = "<a><a><b><c/></b></a><b/><b><c/><c/></b></a>";
        let doc = parse(xml).unwrap();
        for q in ["//a/b[c]", "//a//b", "//a!/b[c!]", "//a/b[?c@]"] {
            let gtp = parse_twig(q).unwrap();
            let (rs, _) = evaluate_streaming(xml, &gtp, MatchOptions::default()).unwrap();
            assert_eq!(rs, evaluate(&doc, &gtp), "query {q}");
        }
    }

    #[test]
    fn streaming_surfaces_parse_errors() {
        let gtp = parse_twig("//a/b").unwrap();
        assert!(evaluate_streaming("<a><b>", &gtp, MatchOptions::default()).is_err());
    }
}
