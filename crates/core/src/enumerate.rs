//! Result enumeration from the hierarchical-stack encoding (paper §4).
//!
//! Implements, over a finished [`TwigMatch`]:
//!
//! * `pointPC` / `pointAD` — follow an element's result edges into a child
//!   query node's hierarchical stack (§4 preliminaries);
//! * `compute_total_effects` — project a *non-return* node away, keeping
//!   its total effects on the output-bearing child (paper Figure 10):
//!   under AD only SOT roots contribute (descendants would only produce
//!   duplicates); under PC a single merge walk of the two document-ordered
//!   lists repairs order without sorting;
//! * [`enumerate`] — `EnumTwig²Stack` (paper Figure 11): return nodes
//!   multiply rows (Cartesian product across output branches), group
//!   return nodes fold their SOT into one list cell, optional branches
//!   with no matches yield nulls.
//!
//! The produced [`ResultSet`] is duplicate-free and respects document
//! order without any post-processing — the paper's headline property.

use crate::matcher::{MatchView, TwigMatch};
use crate::sot::{sot_of_hierstack, sot_of_stack_tree_upto, sot_preorder, Sot, SotNode};
use crate::edges::EdgeTarget;
use gtpquery::{Axis, Cell, QNodeId, ResultSet, Role};

/// Enumerate the GTP results encoded in `tm`.
///
/// # Panics
/// Panics if the query is not enumerable (see
/// [`gtpquery::QueryAnalysis::enumerable`]).
pub fn enumerate(tm: &TwigMatch<'_>) -> ResultSet {
    enumerate_view(&tm.view())
}

pub(crate) fn enumerate_view(tm: &MatchView<'_>) -> ResultSet {
    let _span = twigobs::span(twigobs::Phase::Enumerate);
    let result = enumerate_view_inner(tm);
    twigobs::add(twigobs::Counter::ResultsEnumerated, result.len() as u64);
    result
}

fn enumerate_view_inner(tm: &MatchView<'_>) -> ResultSet {
    let analysis = tm.analysis;
    assert!(
        analysis.enumerable(),
        "query is not enumerable: {:?}",
        analysis.issues()
    );
    let mut result = ResultSet::new(analysis.columns().to_vec());
    if result.columns.is_empty() {
        return result; // boolean query — use TwigMatch::root_match_count
    }
    let root = tm.gtp.root();
    let esot = sot_of_hierstack(tm.stack(root));
    if esot.is_empty() {
        return result;
    }
    for row in enum_node(tm, root, &esot) {
        result.push(row);
    }
    result
}

/// A result row under construction. `Cell::Null` doubles as "not yet
/// filled": branch column sets are disjoint, so merging prefers the
/// non-null side and genuine nulls (unmatched optional branches) survive.
pub(crate) type PartialRow = Vec<Cell>;

/// `pointPC(e, HS[M])`: the stored PC edges, already in document order.
fn point_pc(tm: &MatchView<'_>, e: &SotNode, e_q: QNodeId, child_idx: usize) -> Sot {
    let hs_e = tm.stack(e_q);
    let m = tm.gtp.children(e_q)[child_idx];
    let hs_m = tm.stack(m);
    let elem = hs_e.elem(e.loc);
    elem.edges
        .for_child(child_idx)
        .iter()
        .map(|t| match *t {
            EdgeTarget::Element(st, idx) => {
                let se = hs_m.elem((st, idx));
                SotNode {
                    node: se.node,
                    region: se.region,
                    loc: (st, idx),
                    children: Vec::new(),
                }
            }
            EdgeTarget::Subtree { .. } => unreachable!("PC step stores element edges"),
        })
        .collect()
}

/// `pointAD(e, HS[M])`: expand the stored subtree edges into SOT forests.
fn point_ad(tm: &MatchView<'_>, e: &SotNode, e_q: QNodeId, child_idx: usize) -> Sot {
    let hs_e = tm.stack(e_q);
    let m = tm.gtp.children(e_q)[child_idx];
    let hs_m = tm.stack(m);
    let elem = hs_e.elem(e.loc);
    let mut out = Vec::new();
    for t in elem.edges.for_child(child_idx) {
        match *t {
            EdgeTarget::Subtree { root, upto } => {
                out.extend(sot_of_stack_tree_upto(hs_m, root, upto))
            }
            EdgeTarget::Element(..) => unreachable!("AD step stores subtree edges"),
        }
    }
    out
}

/// The related-match SOT of a single element `e` for child step `i`
/// (paper Figure 11 line 9).
fn point_step(tm: &MatchView<'_>, e: &SotNode, e_q: QNodeId, child_idx: usize) -> Sot {
    let m = tm.gtp.children(e_q)[child_idx];
    match tm.gtp.edge(m).expect("child edge").axis {
        Axis::Child => point_pc(tm, e, e_q, child_idx),
        Axis::Descendant => point_ad(tm, e, e_q, child_idx),
    }
}

/// `computeTotalEffects` (paper Figure 10): effects of the whole `esot` of
/// non-return node `e_q` on its child step `child_idx`.
pub(crate) fn compute_total_effects(
    tm: &MatchView<'_>,
    esot: &Sot,
    e_q: QNodeId,
    child_idx: usize,
) -> Sot {
    let m = tm.gtp.children(e_q)[child_idx];
    let axis = tm.gtp.edge(m).expect("child edge").axis;
    let mut out = Vec::new();
    match axis {
        // AD: descendants of an SOT root can only contribute duplicates —
        // the root's subtree edges already cover everything inside it.
        Axis::Descendant => {
            for t in esot {
                out.extend(point_ad(tm, t, e_q, child_idx));
            }
        }
        // PC: one merge walk of the two document-ordered lists per tree.
        Axis::Child => {
            for t in esot {
                total_effects_pc(tm, t, e_q, child_idx, &mut out);
            }
        }
    }
    out
}

/// The PC merge walk of Figure 10 for one SOT tree.
fn total_effects_pc(
    tm: &MatchView<'_>,
    t: &SotNode,
    e_q: QNodeId,
    child_idx: usize,
    out: &mut Sot,
) {
    let ms = point_pc(tm, t, e_q, child_idx);
    let mut kids = t.children.iter().peekable();
    for m in ms {
        // (1) e-children entirely before m: flush their effects first.
        while let Some(c) = kids.peek() {
            if c.region.right < m.region.left {
                total_effects_pc(tm, c, e_q, child_idx, out);
                kids.next();
            } else {
                break;
            }
        }
        // (2) e-children inside m (or equal, footnote 5): nest their
        // effects under m.
        let mut sub = Vec::new();
        while let Some(c) = kids.peek() {
            if m.region.is_ancestor_or_self(&c.region) {
                total_effects_pc(tm, c, e_q, child_idx, &mut sub);
                kids.next();
            } else {
                break;
            }
        }
        out.push(SotNode { children: sub, ..m });
    }
    // (3) remaining e-children after the last m.
    let rest: Vec<&SotNode> = kids.collect();
    for c in rest {
        total_effects_pc(tm, c, e_q, child_idx, out);
    }
}

/// `EnumTwig²Stack` (paper Figure 11) over the sub-GTP rooted at `q`.
pub(crate) fn enum_node(tm: &MatchView<'_>, q: QNodeId, esot: &Sot) -> Vec<PartialRow> {
    let analysis = tm.analysis;
    let gtp = tm.gtp;
    let width = analysis.columns().len();
    match gtp.role(q) {
        Role::Return => {
            let col = analysis.column_of(q).expect("return node is a column");
            let mut rows = Vec::new();
            // Visit each tree in eSOT in pre-order: document order.
            for e in sot_preorder(esot) {
                let mut branch_rows: Vec<PartialRow> = vec![vec![Cell::Null; width]];
                for (i, &m) in gtp.children(q).iter().enumerate() {
                    if !analysis.has_output_below(m) {
                        continue;
                    }
                    let msot = point_step(tm, e, q, i);
                    let mut sub = enum_node(tm, m, &msot);
                    if sub.is_empty() {
                        // Only possible below an optional step.
                        sub = vec![null_row(tm, m)];
                    }
                    branch_rows = product(branch_rows, sub);
                }
                for mut row in branch_rows {
                    row[col] = Cell::Node(e.node);
                    rows.push(row);
                }
            }
            rows
        }
        Role::GroupReturn => {
            let col = analysis.column_of(q).expect("group node is a column");
            let group = sot_preorder(esot).iter().map(|s| s.node).collect();
            let mut row = vec![Cell::Null; width];
            row[col] = Cell::Group(group);
            vec![row]
        }
        Role::NonReturn => {
            let (i, m) = gtp
                .children(q)
                .iter()
                .enumerate()
                .find(|&(_, &c)| analysis.has_output_below(c))
                .map(|(i, &c)| (i, c))
                .expect("non-return node on the output path has an output child");
            let msot = compute_total_effects(tm, esot, q, i);
            if msot.is_empty() {
                return vec![null_row(tm, m)];
            }
            enum_node(tm, m, &msot)
        }
    }
}

/// A row with every output column in the subtree of `m` nulled (empty
/// groups for group columns).
pub(crate) fn null_row(tm: &MatchView<'_>, m: QNodeId) -> PartialRow {
    let width = tm.analysis.columns().len();
    let mut row = vec![Cell::Null; width];
    fill_nulls(tm, m, &mut row);
    row
}

fn fill_nulls(tm: &MatchView<'_>, q: QNodeId, row: &mut PartialRow) {
    if let Some(col) = tm.analysis.column_of(q) {
        row[col] = match tm.gtp.role(q) {
            Role::GroupReturn => Cell::Group(Vec::new()),
            _ => Cell::Null,
        };
    }
    for &c in tm.gtp.children(q) {
        if tm.analysis.has_output_below(c) {
            fill_nulls(tm, c, row);
        }
    }
}

pub(crate) fn product(a: Vec<PartialRow>, b: Vec<PartialRow>) -> Vec<PartialRow> {
    // The first factor of every product chain is a single all-empty row.
    let empty = |r: &PartialRow| r.iter().all(|c| matches!(c, Cell::Null));
    if a.len() == 1 && empty(&a[0]) {
        return b;
    }
    if b.len() == 1 && empty(&b[0]) {
        return a;
    }
    let mut out = Vec::with_capacity(a.len() * b.len());
    for ra in &a {
        for rb in &b {
            out.push(
                ra.iter()
                    .zip(rb.iter())
                    .map(|(x, y)| match (x, y) {
                        // Branch column sets are disjoint, so at most one
                        // side carries a value; genuine nulls merge as
                        // nulls.
                        (Cell::Null, v) => v.clone(),
                        (v, _) => v.clone(),
                    })
                    .collect(),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::{match_document, MatchOptions};
    use gtpquery::parse_twig;
    use twigbaselines::naive_evaluate;
    use xmldom::{parse, Document};

    fn figure1() -> Document {
        parse(
            "<a><a><a><b><c/><d/></b></a><b><a><b><c/><d><d/></d></b></a><c/></b></a>\
             <b><d/></b></a>",
        )
        .unwrap()
    }

    /// Run both engines and demand exact equality (rows AND order).
    fn check(doc: &Document, query: &str) {
        let gtp = parse_twig(query).unwrap();
        let expected = naive_evaluate(doc, &gtp);
        for existence_opt in [false, true] {
            let (tm, _) = match_document(doc, &gtp, MatchOptions { existence_opt });
            let got = enumerate(&tm);
            assert_eq!(
                got, expected,
                "query {query} existence_opt={existence_opt}\ngot:\n{got}\nexpected:\n{expected}"
            );
        }
    }

    #[test]
    fn paper_section2_examples() {
        let doc = figure1();
        check(&doc, "//b//d"); // (i) 6 path matches
        check(&doc, "//b!//d"); // (ii) 4 distinct d's
        check(&doc, "//a!/b"); // (iii) 4 b's in document order
    }

    #[test]
    fn figure1_full_twig() {
        check(&figure1(), "//a/b[//d][c]");
    }

    #[test]
    fn example5_d_only_return() {
        // A,B non-return, D return: tuples (d1),(d2),(d3) (paper Ex. 5).
        let doc = figure1();
        let gtp = parse_twig("//a!/b![//d][c!]").unwrap();
        let (tm, _) = match_document(&doc, &gtp, MatchOptions::default());
        let rs = enumerate(&tm);
        assert_eq!(rs.len(), 3);
        assert!(rs.is_duplicate_free());
        check(&doc, "//a!/b![//d][c!]");
    }

    #[test]
    fn example4_total_effects() {
        // Total effects of HS[A]'s SOT (a2(a3,a4)) on B under PC: two
        // trees, (b1) and (b2(b3)).
        let doc = figure1();
        let gtp = parse_twig("//a/b[//d][c]").unwrap();
        let (tm, _) = match_document(&doc, &gtp, MatchOptions { existence_opt: false });
        let esot = sot_of_hierstack(tm.stack(gtp.root()));
        let te = compute_total_effects(&tm.view(), &esot, gtp.root(), 0);
        assert_eq!(te.len(), 2, "two SOT trees");
        // First tree: single b (b1); second: b2 with child b3.
        assert!(te[0].children.is_empty());
        assert_eq!(te[1].children.len(), 1);
        assert!(te[0].region.left < te[1].region.left);
    }

    #[test]
    fn group_and_optional_queries() {
        let doc = parse("<r><p><x/><x/></p><p><x/></p><p/></r>").unwrap();
        check(&doc, "//p[?x@]");
        check(&doc, "//p[?x]");
        check(&doc, "//p[x]");
        check(&doc, "//r/p[?x@]");
    }

    #[test]
    fn branch_products() {
        let doc = parse("<r><p><x/><x/><y/><y/></p><p><x/></p></r>").unwrap();
        check(&doc, "//p[x][y]");
        check(&doc, "//p[?x][?y]");
        check(&doc, "//r[.//x]/p/y");
    }

    #[test]
    fn recursive_same_label_documents() {
        let doc = parse("<a><a><b/><a><b/></a></a><b/></a>").unwrap();
        check(&doc, "//a/b");
        check(&doc, "//a//b");
        check(&doc, "//a/a//b");
        check(&doc, "//a!//b");
        check(&doc, "//a!/a!//b");
    }

    #[test]
    fn rooted_queries() {
        let doc = parse("<a><a><b/></a><b/></a>").unwrap();
        check(&doc, "/a/b");
        check(&doc, "/a//b");
        check(&doc, "/a/a/b");
    }

    #[test]
    fn dblp_like_query() {
        let doc = parse(
            "<dblp><inproceedings><title/><author/><author/></inproceedings>\
             <inproceedings><author/></inproceedings>\
             <article><title/><author/></article></dblp>",
        )
        .unwrap();
        check(&doc, "//dblp/inproceedings[title]/author");
        check(&doc, "//dblp!/inproceedings[title!]/author");
        check(&doc, "//dblp!/inproceedings[title!]/author@");
    }
}
