//! Tour of the GTP feature set beyond plain twigs: non-return nodes,
//! grouping, optional axes, AND/OR predicates, and value predicates.
//!
//! ```text
//! cargo run --example gtp_features
//! ```

use gtpquery::parse_twig;
use twig2stack::evaluate;
use xmldom::parse;

fn main() {
    let doc = parse(
        "<library>\
           <book><title>Query Processing</title><isbn>111</isbn><year>2006</year>\
             <author>Chen</author><author>Li</author></book>\
           <book><title>Other Topics</title><doi>d-1</doi><year>2002</year>\
             <author>Someone</author></book>\
           <book><title>Unregistered</title><year>2006</year><author>Anon</author></book>\
           <report><title>Tech Report</title><doi>d-2</doi><year>2006</year></report>\
         </library>",
    )
    .unwrap();

    let show = |q: &str| {
        let gtp = parse_twig(q).unwrap();
        let rs = evaluate(&doc, &gtp);
        println!("{q}\n  as GTP: {gtp}\n  -> {} tuples", rs.len());
        for row in rs.rows.iter().take(4) {
            let cells: Vec<String> = row
                .iter()
                .map(|c| match c {
                    gtpquery::Cell::Node(n) => {
                        format!("<{}>{}", doc.tag_name(*n), doc.text(*n).unwrap_or(""))
                    }
                    gtpquery::Cell::Null => "-".into(),
                    gtpquery::Cell::Group(g) => format!("{{{} grouped}}", g.len()),
                })
                .collect();
            println!("     {}", cells.join(" | "));
        }
        println!();
    };

    // AND/OR: books registered with an ISBN *or* a DOI.
    show("//book[isbn or doi]/title");
    // Value predicate + grouping: authors of 2006 books, one row per book.
    show("//library!/book[year='2006'!]/author@");
    // Optional axis: every book, with its DOI when present (null otherwise).
    show("//book[?doi]/title!");
    // Contains-predicate on the returned node itself.
    show("//library!//title~'Report'");
}
