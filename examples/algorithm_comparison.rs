//! Run the paper's three competitors — TwigStack, TJFast, Twig²Stack —
//! over the same document and query, check they agree, and show where
//! their work goes (path solutions, merge-join comparisons, stack pushes).
//!
//! ```text
//! cargo run --release --example algorithm_comparison [twig-query]
//! ```

use gtpquery::parse_twig;
use twig2stack::{enumerate, match_document, MatchOptions};
use twigbaselines::{
    build_streams, tj_fast, twig_stack, DeweyResolver, TJFastStats, TwigStackStats,
};
use xmlindex::{DeweyIndex, ElementIndex, SliceStream};
use xmlgen::{generate_dblp, DblpConfig};

fn main() {
    let query = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "//dblp/inproceedings[title]/author".to_string());
    let gtp = parse_twig(&query).expect("valid twig query");

    let doc = generate_dblp(&DblpConfig { inproceedings: 4000, articles: 3000, seed: 42 });
    println!("document: {} elements; query: {query}\n", doc.len());

    // --- TwigStack ----------------------------------------------------
    let index = ElementIndex::build(&doc);
    let owned = build_streams(&index, doc.labels(), &gtp);
    let streams: Vec<SliceStream<'_>> = owned.iter().map(|v| SliceStream::new(v)).collect();
    let mut ts = TwigStackStats::default();
    let t0 = std::time::Instant::now();
    let rs_twigstack = twig_stack(&gtp, streams, &mut ts);
    let t_twigstack = t0.elapsed();
    println!(
        "TwigStack   {:>8.2?}  {} tuples | scanned {} elements, {} path solutions, {} join comparisons",
        t_twigstack, rs_twigstack.len(), ts.elements_scanned, ts.path_solutions, ts.join.comparisons
    );

    // --- TJFast ---------------------------------------------------------
    let dewey = DeweyIndex::build(&doc);
    let resolver = DeweyResolver::build(&dewey, doc.labels());
    let mut tj = TJFastStats::default();
    let t0 = std::time::Instant::now();
    let rs_tjfast = tj_fast(&gtp, &dewey, doc.labels(), &resolver, &mut tj);
    let t_tjfast = t0.elapsed();
    println!(
        "TJFast      {:>8.2?}  {} tuples | scanned {} leaf elements ({}B of Dewey streams), {} path solutions",
        t_tjfast, rs_tjfast.len(), tj.elements_scanned, tj.leaf_stream_bytes, tj.path_solutions
    );

    // --- Twig2Stack -----------------------------------------------------
    let t0 = std::time::Instant::now();
    let (tm, t2s) = match_document(&doc, &gtp, MatchOptions::default());
    let rs_t2s = enumerate(&tm);
    let t_t2s = t0.elapsed();
    println!(
        "Twig2Stack  {:>8.2?}  {} tuples | {} elements pushed, {} edges, ZERO path solutions, peak {}B",
        t_t2s, rs_t2s.len(), t2s.elements_pushed, t2s.edges_created, t2s.peak_bytes
    );

    assert_eq!(
        rs_t2s.clone().sorted(),
        rs_twigstack.sorted(),
        "engines disagree!"
    );
    assert_eq!(rs_t2s.sorted(), rs_tjfast.sorted(), "engines disagree!");
    println!("\nall three engines agree.");
}
