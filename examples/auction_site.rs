//! XMark auction-site scenario: GTP queries with optional axes, an XQuery
//! translated to a GTP, and early result enumeration keeping memory flat.
//!
//! ```text
//! cargo run --release --example auction_site
//! ```

use gtpquery::{parse_twig, translate, Cell, QueryAnalysis};
use twig2stack::{evaluate, evaluate_early, match_document, MatchOptions};
use xmlgen::{generate_xmark, XmarkConfig};

fn main() {
    let doc = generate_xmark(&XmarkConfig::at_scale(1));
    println!("generated XMark-like site with {} elements", doc.len());

    // Paper XMark-Q2: persons with an address zipcode, returning their
    // education — then the same with the address made optional: persons
    // without an address now appear with a NULL education context.
    for q in [
        "//people//person[.//address/zipcode]/profile/education",
        "//people!//person[.//?address!/zipcode!]/profile!/education",
    ] {
        let gtp = parse_twig(q).unwrap();
        let rs = evaluate(&doc, &gtp);
        println!("\n{q}\n  -> {} tuples", rs.len());
    }

    // An XQuery over the same data, translated to a GTP: FOR binds
    // mandatorily, WHERE checks existence, RETURN groups optionally.
    let xq = "for $p in //people//person \
              where $p/address/zipcode \
              return ($p, $p/profile/education)";
    let gtp = translate(xq).expect("supported XQuery subset");
    println!("\nXQuery: {xq}\n  as GTP: {gtp}");
    let rs = evaluate(&doc, &gtp);
    let with_education = rs
        .rows
        .iter()
        .filter(|r| matches!(&r[1], Cell::Group(g) if !g.is_empty()))
        .count();
    println!(
        "  -> {} persons pass the WHERE clause; {} have an education entry",
        rs.len(),
        with_education
    );

    // Early result enumeration (paper §4.4): the trigger node is `person`,
    // so memory stays bounded by one person's subtree no matter how large
    // the site grows.
    let gtp = parse_twig("//people!//person[.//address!/zipcode!]/profile!/education").unwrap();
    let analysis = QueryAnalysis::new(&gtp);
    let (_, pure_stats) = match_document(&doc, &gtp, MatchOptions::default());
    let (rs, early_stats) =
        evaluate_early(&doc, &gtp, MatchOptions::default()).expect("early-capable query");
    println!(
        "\nearly result enumeration: {} tuples, {} triggers (top branch node: q{})",
        rs.len(),
        early_stats.triggers,
        analysis.top_branch().index(),
    );
    println!(
        "  peak stack memory: pure bottom-up {}B vs early {}B ({}x smaller)",
        pure_stats.peak_bytes,
        early_stats.peak_bytes,
        pure_stats.peak_bytes / early_stats.peak_bytes.max(1)
    );
}
