//! Streaming scenario (paper §7): match a twig query over XML text that is
//! never materialized as a DOM. Start tags arrive in pre-order and end
//! tags in post-order — exactly the traversal the bottom-up matcher needs,
//! which is why Twig²Stack applies to streams where TwigStack/TJFast
//! (which need look-ahead into other node indexes) do not.
//!
//! ```text
//! cargo run --release --example streaming_filter
//! ```

use gtpquery::parse_twig;
use twig2stack::{evaluate_streaming, MatchOptions};
use xmlgen::{generate_dblp, DblpConfig};
use xmldom::{write, Indent};

fn main() {
    // Pretend this arrived over the network: serialize a bibliography and
    // forget the DOM.
    let xml = {
        let doc = generate_dblp(&DblpConfig { inproceedings: 2000, articles: 1500, seed: 7 });
        write(&doc, Indent::None)
    };
    println!("streaming over {} bytes of XML", xml.len());

    for q in [
        "//dblp/inproceedings[title]/author",
        "//dblp!/article[author!][.//title!]//year",
        "//inproceedings[author][.//title]//booktitle",
    ] {
        let gtp = parse_twig(q).unwrap();
        let (results, stats) =
            evaluate_streaming(&xml, &gtp, MatchOptions::default()).expect("well-formed stream");
        println!(
            "{q}\n  -> {} tuples; {} elements entered the hierarchical stacks, peak {}B",
            results.len(),
            stats.elements_pushed,
            stats.peak_bytes
        );
    }
}
