//! Quickstart: parse an XML document, run a twig query with Twig²Stack,
//! and print the matching tuples.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gtpquery::{parse_twig, Cell};
use twig2stack::evaluate;
use xmldom::parse;

fn main() {
    let xml = r#"
        <dblp>
          <inproceedings key="vldb/ChenLTHAC06">
            <author>Songting Chen</author>
            <author>Hua-Gang Li</author>
            <title>Twig2Stack: Bottom-up Processing of GTP Queries</title>
            <year>2006</year>
            <booktitle>VLDB</booktitle>
          </inproceedings>
          <article key="journals/x/1">
            <author>Someone Else</author>
            <title>An Unrelated Article</title>
            <year>2005</year>
          </article>
          <inproceedings key="conf/x/2">
            <author>Another Author</author>
            <year>2004</year>
            <booktitle>Workshop</booktitle>
          </inproceedings>
        </dblp>"#;

    let doc = parse(xml).expect("well-formed XML");
    println!("parsed {} elements", doc.len());

    // A twig query: inproceedings that have a title, returning authors.
    // All query nodes are return nodes by default (a "full twig query").
    let gtp = parse_twig("//dblp/inproceedings[title]/author").expect("valid twig");
    println!("query: {gtp}");

    let results = evaluate(&doc, &gtp);
    println!("{} result tuples:", results.len());
    for row in &results.rows {
        let cells: Vec<String> = row
            .iter()
            .map(|c| match c {
                Cell::Node(n) => {
                    let text = doc.text(*n).unwrap_or("");
                    format!("<{}>{}", doc.tag_name(*n), text)
                }
                Cell::Null => "NULL".to_string(),
                Cell::Group(g) => format!("group of {}", g.len()),
            })
            .collect();
        println!("  {}", cells.join(" | "));
    }

    // The same query with GTP roles: one row per inproceedings, with its
    // authors grouped into a list ('!' marks non-return nodes, '@' marks
    // the group-return node).
    let gtp = parse_twig("//dblp!/inproceedings[title!]/author@").expect("valid GTP");
    let grouped = evaluate(&doc, &gtp);
    println!("\nauthors grouped per inproceedings ({} tuples):", grouped.len());
    for row in &grouped.rows {
        if let (Cell::Node(paper), Cell::Group(authors)) = (&row[0], &row[1]) {
            let key = doc.attribute(*paper, "key").unwrap_or("?");
            let names: Vec<&str> = authors.iter().filter_map(|&n| doc.text(n)).collect();
            println!("  {key}: {names:?}");
        }
    }
}
