//! Value predicates on element text (`[year='2006']`-style) — paper §3.4
//! notes that evaluating them during the traversal shrinks the
//! hierarchical stacks. DOM-mode only: structure-only streams carry no
//! text.

use gtpquery::{parse_twig, Cell, ValuePred};
use twig2stack::{evaluate, evaluate_early, match_document, MatchOptions};
use twigbaselines::naive_evaluate;
use xmldom::parse;

const DOC: &str = "<dblp>\
    <inproceedings><title>Twig joins</title><year>2006</year><author>A</author></inproceedings>\
    <inproceedings><title>Other</title><year>2002</year><author>B</author></inproceedings>\
    <inproceedings><title>Twig encore</title><year>2006</year><author>C</author></inproceedings>\
    </dblp>";

#[test]
fn parser_reads_value_predicates() {
    let g = parse_twig("//inproceedings[year='2006']/author").unwrap();
    let year = g.find("year").unwrap();
    assert_eq!(
        g.value_pred(year),
        Some(&ValuePred::TextEquals("2006".into()))
    );
    assert!(g.has_value_preds());
    // Contains variant + role marker after the literal.
    let g = parse_twig("//inproceedings[title~'Twig'!]/author").unwrap();
    let title = g.find("title").unwrap();
    assert_eq!(
        g.value_pred(title),
        Some(&ValuePred::TextContains("Twig".into()))
    );
    assert_eq!(g.role(title), gtpquery::Role::NonReturn);
    // Display round-trips.
    let g2 = parse_twig(&g.to_string()).unwrap();
    assert_eq!(g2.value_pred(g2.find("title").unwrap()), g.value_pred(title));
}

#[test]
fn equals_filters_matches() {
    let doc = parse(DOC).unwrap();
    for q in [
        "//inproceedings[year='2006']/author",
        "//inproceedings[year='2002'!]/author",
        "//inproceedings[title~'Twig']/year",
        "//dblp!/inproceedings[year='2006'!]/author@",
    ] {
        let gtp = parse_twig(q).unwrap();
        let expected = naive_evaluate(&doc, &gtp);
        assert_eq!(evaluate(&doc, &gtp), expected, "query {q}");
        if let Ok((early, _)) = evaluate_early(&doc, &gtp, MatchOptions::default()) {
            assert_eq!(early, expected, "early mode on {q}");
        }
    }
    let gtp = parse_twig("//inproceedings[year='2006']/author").unwrap();
    let rs = evaluate(&doc, &gtp);
    assert_eq!(rs.len(), 2); // authors A and C
}

#[test]
fn predicate_on_return_node() {
    let doc = parse(DOC).unwrap();
    let gtp = parse_twig("//inproceedings!/year='2006'").unwrap();
    let rs = evaluate(&doc, &gtp);
    assert_eq!(rs.len(), 2);
    for row in &rs.rows {
        let Cell::Node(n) = row[0] else { panic!() };
        assert_eq!(doc.text(n).map(str::trim), Some("2006"));
    }
    assert_eq!(rs, naive_evaluate(&doc, &gtp));
}

#[test]
fn predicates_shrink_the_stacks() {
    // Paper §3.4: value predicates evaluated during the traversal reduce
    // the number of elements pushed.
    let doc = parse(DOC).unwrap();
    let plain = parse_twig("//inproceedings[year]/author").unwrap();
    let filtered = parse_twig("//inproceedings[year='2006']/author").unwrap();
    let (_, s_plain) = match_document(&doc, &plain, MatchOptions::default());
    let (_, s_filtered) = match_document(&doc, &filtered, MatchOptions::default());
    assert!(s_filtered.elements_pushed < s_plain.elements_pushed);
    assert!(s_filtered.peak_bytes <= s_plain.peak_bytes);
}

#[test]
fn streaming_rejects_value_predicates() {
    let gtp = parse_twig("//a[b='x']").unwrap();
    let r = std::panic::catch_unwind(|| {
        twig2stack::evaluate_streaming("<a><b>x</b></a>", &gtp, MatchOptions::default())
    });
    assert!(r.is_err(), "structure-only streams cannot evaluate text");
}

#[test]
fn no_text_never_equals() {
    let doc = parse("<a><b/><b>x</b></a>").unwrap();
    let gtp = parse_twig("//a/b='x'").unwrap();
    let rs = evaluate(&doc, &gtp);
    assert_eq!(rs.len(), 1);
    assert_eq!(rs, naive_evaluate(&doc, &gtp));
}
