//! Workspace-level property test: all engines agree on realistic
//! generated datasets (not just random trees — the per-crate suites cover
//! those). Documents are drawn from the three dataset generators at small
//! scale, queries from a pool of realistic shapes.

use gtpquery::{parse_twig, Role};
use proptest::prelude::*;
use twig2stack::{evaluate, evaluate_early, MatchOptions};
use twigbaselines::{
    build_streams, naive_evaluate, tj_fast, twig_stack, DeweyResolver, TJFastStats,
    TwigStackStats,
};
use xmlindex::{DeweyIndex, ElementIndex, SliceStream};
use xmlgen::{generate_dblp, generate_treebank, generate_xmark, DblpConfig, TreebankConfig, XmarkConfig};
use xmldom::Document;

#[derive(Debug, Clone, Copy)]
enum Gen {
    Dblp,
    Treebank,
    Xmark,
}

fn doc_strategy() -> impl Strategy<Value = (Gen, Document)> {
    (0usize..3, any::<u64>()).prop_map(|(which, seed)| match which {
        0 => (Gen::Dblp, generate_dblp(&DblpConfig::tiny(seed))),
        1 => (
            Gen::Treebank,
            generate_treebank(&TreebankConfig { sentences: 15, max_depth: 18, seed }),
        ),
        _ => (Gen::Xmark, generate_xmark(&XmarkConfig::tiny(seed))),
    })
}

fn queries_for(gen: Gen) -> &'static [&'static str] {
    match gen {
        Gen::Dblp => &[
            "//dblp/inproceedings[title]/author",
            "//dblp/article[author][.//title]//year",
            "//inproceedings[author][.//title]//booktitle",
            "//dblp!/inproceedings[title!]/author@",
            "//dblp/inproceedings[?ee]/title",
            "//article[.//sub]/author",
        ],
        Gen::Treebank => &[
            "//s/vp/pp[in]/np",
            "//s/vp//pp[.//np]/in",
            "//vp[dt]//nn",
            "//np!//np[.//nn]",
            "//s!/np[?pp@]",
            "//s//s//vp",
        ],
        Gen::Xmark => &[
            "/site/open_auctions[.//bidder/personref]//reserve",
            "//people//person[.//address/zipcode]/profile/education",
            "//item[location]/description//keyword",
            "//person[?homepage]/name",
            "//open_auction[.//?reserve!]//personref",
            "//site!//person[name!]/?address@",
        ],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engines_agree_on_realistic_data((gen, doc) in doc_strategy()) {
        for q in queries_for(gen) {
            let gtp = parse_twig(q).unwrap();
            let expected = naive_evaluate(&doc, &gtp);
            let t2s = evaluate(&doc, &gtp);
            prop_assert_eq!(&t2s, &expected, "Twig2Stack vs oracle on {}", q);

            if let Ok((early, _)) = evaluate_early(&doc, &gtp, MatchOptions::default()) {
                prop_assert_eq!(&early, &expected, "early mode on {}", q);
            }

            let full_twig = gtp.iter().all(|n| {
                gtp.role(n) == Role::Return && gtp.edge(n).is_none_or(|e| !e.optional)
            });
            if full_twig {
                let index = ElementIndex::build(&doc);
                let owned = build_streams(&index, doc.labels(), &gtp);
                let streams: Vec<SliceStream<'_>> =
                    owned.iter().map(|v| SliceStream::new(v)).collect();
                let mut ts = TwigStackStats::default();
                let a = twig_stack(&gtp, streams, &mut ts).sorted();
                prop_assert_eq!(&a, &expected.clone().sorted(), "TwigStack on {}", q);

                let dewey = DeweyIndex::build(&doc);
                let resolver = DeweyResolver::build(&dewey, doc.labels());
                let mut tj = TJFastStats::default();
                let b = tj_fast(&gtp, &dewey, doc.labels(), &resolver, &mut tj).sorted();
                prop_assert_eq!(&b, &expected.clone().sorted(), "TJFast on {}", q);
            }
        }
    }
}
