//! The paper's worked examples, asserted end-to-end across every engine in
//! the workspace. The Figure 1 document is reconstructed from the paper's
//! own derivations (§2 examples, §3 merge order, §4 pointPC/pointAD
//! values):
//!
//! ```text
//! a1( a2( a3( b1(c1 d1) )  b2( a4( b3(c2 d2(d3)) ) c3 ) )  b4(d4) )
//! ```

use gtpquery::{parse_twig, Cell};
use twig2stack::{enumerate, evaluate, evaluate_early, match_document, MatchOptions};
use twigbaselines::{
    build_streams, naive_evaluate, tj_fast, twig_stack, DeweyResolver, SatTable, TJFastStats,
    TwigStackStats,
};
use xmlindex::{DeweyIndex, ElementIndex, SliceStream};
use xmldom::{parse, Document};

const FIG1: &str = "<a><a><a><b><c/><d/></b></a><b><a><b><c/><d><d/></d></b></a><c/></b></a>\
                    <b><d/></b></a>";

fn figure1() -> Document {
    parse(FIG1).unwrap()
}

/// Evaluate with every engine and demand agreement (exact for Twig²Stack
/// and the oracle; canonical-sorted for the tuple-order-free baselines).
fn all_engines_agree(doc: &Document, query: &str) -> usize {
    let gtp = parse_twig(query).unwrap();
    let expected = naive_evaluate(doc, &gtp);

    let t2s = evaluate(doc, &gtp);
    assert_eq!(t2s, expected, "Twig2Stack vs oracle on {query}");

    // Baselines handle full twig queries only.
    if gtp.iter().all(|q| {
        gtp.role(q) == gtpquery::Role::Return && gtp.edge(q).is_none_or(|e| !e.optional)
    }) {
        let index = ElementIndex::build(doc);
        let owned = build_streams(&index, doc.labels(), &gtp);
        let streams: Vec<SliceStream<'_>> = owned.iter().map(|v| SliceStream::new(v)).collect();
        let mut ts = TwigStackStats::default();
        let twigstack = twig_stack(&gtp, streams, &mut ts);
        assert_eq!(
            twigstack.sorted(),
            expected.clone().sorted(),
            "TwigStack vs oracle on {query}"
        );

        let dewey = DeweyIndex::build(doc);
        let resolver = DeweyResolver::build(&dewey, doc.labels());
        let mut tj = TJFastStats::default();
        let tjfast = tj_fast(&gtp, &dewey, doc.labels(), &resolver, &mut tj);
        assert_eq!(
            tjfast.sorted(),
            expected.clone().sorted(),
            "TJFast vs oracle on {query}"
        );
    }

    // Early enumeration, when the shape allows it.
    if let Ok((early, _)) = evaluate_early(doc, &gtp, MatchOptions::default()) {
        assert_eq!(early, expected, "early mode vs oracle on {query}");
    }

    expected.len()
}

#[test]
fn section2_example_i_full_path_matches() {
    // //B//D with both nodes returned: exactly the six matches the paper
    // lists — (b1,d1), (b2,d2), (b2,d3), (b3,d2), (b3,d3), (b4,d4).
    assert_eq!(all_engines_agree(&figure1(), "//b//d"), 6);
}

#[test]
fn section2_example_ii_duplicates_eliminated() {
    // D the only return node: (d1), (d2), (d3), (d4) — four rows, no
    // duplicate elimination needed.
    let doc = figure1();
    assert_eq!(all_engines_agree(&doc, "//b!//d"), 4);
    let rs = evaluate(&doc, &parse_twig("//b!//d").unwrap());
    assert!(rs.is_duplicate_free());
}

#[test]
fn section2_example_iii_document_order() {
    // //A/B with B the only return node: (b1), (b2), (b3), (b4) in
    // document order — which differs from the path-match order.
    let doc = figure1();
    assert_eq!(all_engines_agree(&doc, "//a!/b"), 4);
    let rs = evaluate(&doc, &parse_twig("//a!/b").unwrap());
    let lefts: Vec<u32> = rs
        .rows
        .iter()
        .map(|r| match r[0] {
            Cell::Node(n) => doc.region(n).left,
            _ => unreachable!(),
        })
        .collect();
    assert!(lefts.windows(2).all(|w| w[0] < w[1]), "document order");
}

#[test]
fn figure4_hierarchical_stack_contents() {
    // The running query //A/B[//D][/C]: HS[A] holds a2, a3, a4 (one stack
    // tree, a2 on top of the merged root); a1 is rejected because b4 has
    // no c child.
    let doc = figure1();
    let gtp = parse_twig("//a/b[//d][c]").unwrap();
    let (tm, _) = match_document(&doc, &gtp, MatchOptions { existence_opt: false });
    let a = gtp.root();
    assert_eq!(tm.stack(a).pushed(), 3);
    assert_eq!(tm.stack(a).roots().len(), 1);
    let sat = SatTable::compute(&doc, &gtp);
    assert_eq!(sat.matches(a).len(), 3);
    assert!(!sat.get(a, doc.root()), "a1 must not satisfy the twig");
    // And the enumeration agrees with the oracle for the full twig.
    assert_eq!(enumerate(&tm), naive_evaluate(&doc, &gtp));
}

#[test]
fn example5_d_only_return() {
    // A, B, C non-return; D the only return node: tuples (d1), (d2), (d3)
    // — not d4, whose b4 lacks a c child (paper Example 5).
    let doc = figure1();
    assert_eq!(all_engines_agree(&doc, "//a!/b![//d][c!]"), 3);
    let rs = evaluate(&doc, &parse_twig("//a!/b![//d][c!]").unwrap());
    for row in &rs.rows {
        let Cell::Node(n) = row[0] else { panic!() };
        assert_eq!(doc.tag_name(n), "d");
    }
}

#[test]
fn figure2_gtp_semantics() {
    // XQuery_1 of Figure 2: D's existence is checked but not returned.
    let doc = figure1();
    let g1 = gtpquery::translate("for $b in //a/b where $b//d return $b").unwrap();
    let rs = evaluate(&doc, &g1);
    // Every b has an a parent and a d descendant: b1, b2, b3, b4.
    assert_eq!(rs.len(), 4);
    assert_eq!(rs, naive_evaluate(&doc, &g1));

    // XQuery_2: optional grouped C children.
    let g2 = gtpquery::translate("for $b in //a/b let $c := $b/c return ($b, $c)").unwrap();
    let rs = evaluate(&doc, &g2);
    assert_eq!(rs.len(), 4, "every a/b appears, with or without c children");
    let empty_groups = rs
        .rows
        .iter()
        .filter(|r| matches!(&r[1], Cell::Group(g) if g.is_empty()))
        .count();
    assert_eq!(empty_groups, 1, "only b4 has no c child");
}

#[test]
fn optional_axes_and_groups_on_figure1() {
    let doc = figure1();
    all_engines_agree(&doc, "//a/b[?c]");
    all_engines_agree(&doc, "//a/b[.//?d@]");
    all_engines_agree(&doc, "//a!/b[//d!][c!]");
    all_engines_agree(&doc, "//b[?c@][.//?d@]");
}

#[test]
fn rooted_versions() {
    let doc = figure1();
    assert_eq!(all_engines_agree(&doc, "/a/b"), 1); // only (a1, b4)
    assert_eq!(all_engines_agree(&doc, "/a//b"), 4);
    assert_eq!(all_engines_agree(&doc, "/a/a/b"), 1); // (a1, a2, b2)
}
