//! End-to-end pipeline tests spanning every crate: generate a dataset,
//! serialize it, re-parse it, build all indexes (in memory and on disk),
//! run all engines over the re-parsed document, and check consistency.

use gtpquery::parse_twig;
use twig2stack::{evaluate, evaluate_streaming, MatchOptions};
use twigbaselines::{
    build_streams, naive_evaluate, tj_fast, twig_stack, DeweyResolver, TJFastStats,
    TwigStackStats,
};
use xmlindex::{
    write_dewey_index, write_region_index, DeweyIndex, DiskDeweyIndex, DiskRegionIndex,
    ElemStream, ElementIndex, SliceStream,
};
use xmlgen::{generate_dblp, generate_treebank, generate_xmark, DblpConfig, TreebankConfig, XmarkConfig};
use xmldom::{parse, write, DocStats, Document, Indent};

fn round_trip(doc: &Document) -> Document {
    let xml = write(doc, Indent::None);
    parse(&xml).expect("serializer output must re-parse")
}

#[test]
fn dblp_pipeline() {
    let doc = generate_dblp(&DblpConfig::tiny(99));
    let doc2 = round_trip(&doc);
    assert_eq!(doc.len(), doc2.len());
    // Regions are re-derived identically (structure-preserving).
    for (a, b) in doc.iter().zip(doc2.iter()) {
        assert_eq!(doc.region(a), doc2.region(b));
        assert_eq!(doc.tag_name(a), doc2.tag_name(b));
    }
    for q in [
        "//dblp/inproceedings[title]/author",
        "//dblp/article[author][.//title]//year",
        "//inproceedings[author][.//title]//booktitle",
    ] {
        let gtp = parse_twig(q).unwrap();
        assert_eq!(
            evaluate(&doc2, &gtp),
            naive_evaluate(&doc2, &gtp),
            "query {q}"
        );
    }
}

#[test]
fn treebank_cross_engine() {
    let doc = generate_treebank(&TreebankConfig::tiny(3));
    for q in ["//s/vp/pp[in]/np", "//vp[dt]//nn", "//s//np[.//nn]/pp"] {
        let gtp = parse_twig(q).unwrap();
        let expected = naive_evaluate(&doc, &gtp).sorted();

        let index = ElementIndex::build(&doc);
        let owned = build_streams(&index, doc.labels(), &gtp);
        let streams: Vec<SliceStream<'_>> = owned.iter().map(|v| SliceStream::new(v)).collect();
        let mut ts = TwigStackStats::default();
        assert_eq!(
            twig_stack(&gtp, streams, &mut ts).sorted(),
            expected,
            "TwigStack on {q}"
        );

        let dewey = DeweyIndex::build(&doc);
        let resolver = DeweyResolver::build(&dewey, doc.labels());
        let mut tj = TJFastStats::default();
        assert_eq!(
            tj_fast(&gtp, &dewey, doc.labels(), &resolver, &mut tj).sorted(),
            expected,
            "TJFast on {q}"
        );

        assert_eq!(
            evaluate(&doc, &gtp).sorted(),
            expected,
            "Twig2Stack on {q}"
        );
    }
}

#[test]
fn xmark_streaming_equals_dom() {
    let doc = generate_xmark(&XmarkConfig::tiny(5));
    let xml = write(&doc, Indent::None);
    for q in [
        "/site/open_auctions[.//bidder/personref]//reserve",
        "//people//person[.//address/zipcode]/profile/education",
        "//item[location]/description//keyword",
    ] {
        let gtp = parse_twig(q).unwrap();
        let (streamed, _) = evaluate_streaming(&xml, &gtp, MatchOptions::default()).unwrap();
        assert_eq!(streamed, evaluate(&doc, &gtp), "query {q}");
    }
}

#[test]
fn disk_indexes_serve_the_same_elements() {
    let doc = generate_xmark(&XmarkConfig::tiny(2));
    let dir = std::env::temp_dir().join(format!("t2s-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let rpath = dir.join("regions.idx");
    let dpath = dir.join("dewey.idx");
    write_region_index(&doc, &rpath).unwrap();
    let dewey = DeweyIndex::build(&doc);
    write_dewey_index(&dewey, doc.labels(), &dpath).unwrap();

    let mem = ElementIndex::build(&doc);
    let disk = DiskRegionIndex::open(&rpath).unwrap();
    let ddisk = DiskDeweyIndex::open(&dpath).unwrap();
    for (label, name) in doc.labels().iter() {
        // Region streams identical.
        let mut ms = mem.stream(label);
        let mut dsk = disk.stream(name).unwrap();
        loop {
            let (a, b) = (ms.next_elem(), dsk.next_elem());
            assert_eq!(a, b, "label {name}");
            if a.is_none() {
                break;
            }
        }
        // Dewey streams identical.
        let expected: Vec<_> = dewey
            .elements(label)
            .into_iter()
            .map(|e| (e.id, e.dewey.to_vec()))
            .collect();
        let mut got = Vec::new();
        let mut s = ddisk.stream(name).unwrap();
        let mut buf = Vec::new();
        while let Some(id) = s.next_into(&mut buf).unwrap() {
            got.push((id, buf.clone()));
        }
        assert_eq!(got, expected, "dewey label {name}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dataset_statistics_are_sane() {
    // The Figure 14 shape constraints at test scale.
    let dblp = generate_dblp(&DblpConfig::tiny(1));
    let s = DocStats::compute_without_size(&dblp);
    assert!(s.max_depth <= 6);

    let tb = generate_treebank(&TreebankConfig::tiny(1));
    let s = DocStats::compute_without_size(&tb);
    assert!(s.max_depth > 6, "TreeBank must be deep");

    let xm = generate_xmark(&XmarkConfig::tiny(1));
    let s = DocStats::compute_without_size(&xm);
    assert!(s.distinct_labels >= 40, "XMark is label-rich");
}
