//! Replay every `.t2s` case under `corpus/` against all engines.
//!
//! This is the regression half of the fuzzing subsystem: any pair that
//! ever violated an invariant gets checked on every `cargo test` run,
//! forever. See `corpus/README.md` for the file format and how
//! `twigfuzz` failures become corpus entries.

use std::fs;
use std::path::PathBuf;
use twigfuzz::CaseFile;

#[test]
fn every_corpus_case_replays_clean() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut cases = 0;
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .expect("corpus/ exists at the workspace root")
        .map(|e| e.expect("readable corpus entry").path())
        .collect();
    entries.sort();
    for path in entries {
        if path.extension().is_none_or(|e| e != "t2s") {
            continue;
        }
        let text = fs::read_to_string(&path).expect("readable case file");
        let case = CaseFile::parse(&text)
            .unwrap_or_else(|e| panic!("{}: malformed case: {e}", path.display()));
        let failures = case
            .replay()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            failures.is_empty(),
            "{}: invariant regression: {failures:?}",
            path.display()
        );
        cases += 1;
    }
    assert!(cases >= 4, "expected the seed corpus, found {cases} case(s)");
}
