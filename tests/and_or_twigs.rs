//! AND/OR twig queries (paper §3.3.3): predicates with `or` alternatives
//! form disjunctive existence checks; the bottom-up matcher evaluates
//! them natively while the decomposition baselines reject them.

use gtpquery::{parse_twig, QueryAnalysis, Role};
use twig2stack::{count_results, evaluate, evaluate_early, match_document, MatchOptions};
use twigbaselines::{naive_evaluate, SatTable};
use xmldom::parse;

const DOC: &str = "<lib>\
    <book><title/><isbn/></book>\
    <book><title/><doi/></book>\
    <book><title/></book>\
    <book><isbn/><doi/></book>\
    <report><doi/><title/></report>\
    </lib>";

#[test]
fn parser_builds_or_groups() {
    let g = parse_twig("//book[isbn or doi]/title").unwrap();
    assert!(g.has_or_groups());
    let book = g.root();
    let kids = g.children(book);
    assert_eq!(kids.len(), 3); // isbn, doi, title
    assert_eq!(g.or_group(kids[0]), g.or_group(kids[1]));
    assert_ne!(g.or_group(kids[0]), g.or_group(kids[2]));
    // OR-branch members are forced to non-return roles.
    assert_eq!(g.role(kids[0]), Role::NonReturn);
    assert_eq!(g.role(kids[1]), Role::NonReturn);
    assert_eq!(g.role(kids[2]), Role::Return);
    // Display round-trips through the parser.
    let g2 = parse_twig(&g.to_string()).unwrap();
    assert!(g2.has_or_groups());
    assert_eq!(g2.len(), g.len());
}

#[test]
fn or_semantics_in_sat_table() {
    let doc = parse(DOC).unwrap();
    let g = parse_twig("//book[isbn or doi]").unwrap();
    let sat = SatTable::compute(&doc, &g);
    // Books 1, 2, 4 qualify (have isbn or doi); book 3 (title only) not.
    assert_eq!(sat.matches(g.root()).len(), 3);
}

#[test]
fn twig2stack_matches_oracle_on_or_queries() {
    let doc = parse(DOC).unwrap();
    for q in [
        "//book[isbn or doi]",
        "//book[isbn or doi]/title",
        "//lib/book[isbn or doi or title]",
        "//lib[book or report]/*[doi]",
        "//book[isbn or .//doi]/title",
        "//lib!/book[isbn or doi]/title",
    ] {
        let gtp = parse_twig(q).unwrap();
        let expected = naive_evaluate(&doc, &gtp);
        assert_eq!(evaluate(&doc, &gtp), expected, "query {q}");
        let (tm, _) = match_document(&doc, &gtp, MatchOptions::default());
        assert_eq!(count_results(&tm), expected.len() as u64, "count on {q}");
        if let Ok((early, _)) = evaluate_early(&doc, &gtp, MatchOptions::default()) {
            assert_eq!(early, expected, "early mode on {q}");
        }
    }
}

#[test]
fn or_with_mixed_axes() {
    // `[in or .//np/vbn]`-style: one PC alternative, one AD path.
    let doc = parse("<s><vp><pp><in/></pp><pp><x><np><vbn/></np></x></pp><pp><nn/></pp></vp></s>")
        .unwrap();
    let gtp = parse_twig("//vp/pp[in or .//np/vbn]").unwrap();
    let expected = naive_evaluate(&doc, &gtp);
    assert_eq!(expected.len(), 2); // first two pp's
    assert_eq!(evaluate(&doc, &gtp), expected);
}

#[test]
fn or_branch_with_output_is_rejected() {
    // Returning from a disjunctive branch is undefined: flagged.
    let g = parse_twig("//book[isbn or doi]").unwrap();
    // Force one branch to return.
    let mut g2 = g.clone();
    let isbn = g2.find("isbn").unwrap();
    g2.set_role(isbn, Role::Return);
    let analysis = QueryAnalysis::new(&g2);
    assert!(!analysis.enumerable());
}

#[test]
fn baselines_reject_or_queries() {
    let doc = parse(DOC).unwrap();
    let gtp = parse_twig("//book[isbn or doi]/title").unwrap().all_return();
    // all_return makes the roles legal for baselines, but the OR-group
    // itself must be rejected... actually all_return would ALSO make the
    // analysis reject it; use the raw structural check.
    assert!(gtp.has_or_groups());
    let index = xmlindex::ElementIndex::build(&doc);
    let owned = twigbaselines::build_streams(&index, doc.labels(), &gtp);
    let streams: Vec<xmlindex::SliceStream<'_>> =
        owned.iter().map(|v| xmlindex::SliceStream::new(v)).collect();
    let mut stats = twigbaselines::TwigStackStats::default();
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        twigbaselines::twig_stack_solutions(&gtp, streams, &mut stats)
    }));
    assert!(r.is_err(), "TwigStack must reject AND/OR twigs");
}

#[test]
fn or_group_via_builder_api() {
    use gtpquery::{Axis, GtpBuilder};
    let mut b = GtpBuilder::new("book", false);
    let root = b.root();
    let isbn = b.add(root, "isbn", Axis::Child, false, Role::NonReturn);
    let doi = b.add(root, "doi", Axis::Child, false, Role::NonReturn);
    b.same_or_group(&[isbn, doi]);
    let g = b.build();
    assert!(g.has_or_groups());
    let doc = parse(DOC).unwrap();
    assert_eq!(evaluate(&doc, &g), naive_evaluate(&doc, &g));
}
