//! Snapshot rotation under concurrency: an 8-thread query hammer runs
//! while a writer applies a chain of edits through
//! [`QueryService::apply_edit`]. Every result a reader observes must be
//! byte-equal to the oracle of *some* published snapshot version —
//! never a blend of two — and versions can only move forward within one
//! thread, because each request pins exactly one `Arc<Snapshot>` for
//! its whole evaluation. A second, deterministic test pins the
//! plan-cache side of the rotation protocol through the `plan_cache_*`
//! counters: entries for changed labels are invalidated, disjoint
//! entries survive.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use twigserve::{QueryService, ServiceConfig};
use xmldom::{apply_op, parse, Document, EditOp};

const THREADS: usize = 8;
const ROTATIONS: usize = 12;

/// Twelve `<book>` records plus a `<shelf>` of `<mag>`s the edits never
/// touch (so its cached plan must survive label-keyed invalidation).
fn base_doc() -> Document {
    let mut xml = String::from("<lib>");
    for i in 0..12 {
        xml.push_str(&format!(
            "<book><author>a{}</author><title>t{i}</title></book>",
            i % 3
        ));
    }
    xml.push_str("<shelf><mag/><mag/></shelf></lib>");
    parse(&xml).unwrap()
}

/// The k-th edit against the document as it stands: two inserts of a
/// fresh `<book>` record at the front, then one delete of the *last*
/// surviving original record. Results carry node ids, so versions are
/// distinguished by shape: the k-th inserted book holds `k + 2` titles,
/// which (against single-title deletes) keeps every version's
/// `//lib/book/title` row count unique — a reader's observation maps to
/// exactly one snapshot version (asserted below).
fn edit_op(k: usize, cur: &Document) -> EditOp {
    let root = cur.root();
    if k % 3 == 2 {
        let children: Vec<_> = cur.children(root).collect();
        // The last child is <shelf>; the one before it is the oldest
        // surviving original book.
        let target = children[children.len() - 2];
        EditOp::DeleteSubtree { target }
    } else {
        let titles: String = (0..k + 2).map(|t| format!("<title>n{t}</title>")).collect();
        EditOp::InsertSubtree {
            parent: Some(root),
            position: 0,
            subtree: parse(&format!("<book><author>z{k}</author>{titles}</book>")).unwrap(),
        }
    }
}

#[test]
fn hammered_readers_never_observe_a_torn_snapshot() {
    let doc = base_doc();

    // Oracle chain: replay the same edits offline, one document per
    // published version.
    let mut docs = vec![doc.clone()];
    for k in 0..ROTATIONS {
        let cur = docs.last().unwrap();
        let (next, _) = apply_op(cur, &edit_op(k, cur)).expect("offline edit applies");
        docs.push(next);
    }
    let queries = ["//lib/book/title", "//shelf/mag"];
    let oracles: Vec<Vec<_>> = queries
        .iter()
        .map(|q| {
            let gtp = gtpquery::parse_twig(q).unwrap();
            docs.iter().map(|d| twig2stack::evaluate(d, &gtp)).collect()
        })
        .collect();
    // Every edit changes the book results, and no two versions coincide
    // — the monotonicity check below depends on unique observations.
    for v in 0..oracles[0].len() {
        for w in 0..v {
            assert_ne!(oracles[0][w], oracles[0][v], "versions {w} and {v} coincide");
        }
    }

    let svc = QueryService::build(
        doc,
        ServiceConfig {
            max_concurrency: THREADS,
            max_waiting: THREADS * 4,
            ..ServiceConfig::default()
        },
    );
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let svc = &svc;
            let done = &done;
            let queries = &queries;
            let oracles = &oracles;
            scope.spawn(move || {
                let mut last_version = 0usize;
                let mut rounds = 0u64;
                loop {
                    let finishing = done.load(Ordering::Acquire);
                    for (qi, q) in queries.iter().enumerate() {
                        let got = svc.execute(q).unwrap_or_else(|e| panic!("[{q}] {e}"));
                        let Some(v) = oracles[qi].iter().position(|o| *o == got) else {
                            panic!("[worker {t} {q}] torn snapshot: {} rows match no version oracle", got.len())
                        };
                        // The mag oracle is version-ambiguous (edits never
                        // touch it); only book observations order versions.
                        if qi == 0 {
                            assert!(
                                v >= last_version,
                                "[worker {t}] snapshot went backward: v{v} after v{last_version}"
                            );
                            last_version = v;
                        }
                    }
                    rounds += 1;
                    if finishing {
                        break;
                    }
                }
                assert!(rounds > 0, "worker {t} never completed a round");
                // The final round started after the writer finished, so
                // it must have seen the last version.
                assert_eq!(
                    last_version, ROTATIONS,
                    "worker {t} finished on a stale snapshot"
                );
            });
        }
        let svc = &svc;
        let done = &done;
        scope.spawn(move || {
            for k in 0..ROTATIONS {
                let snap = svc.snapshot();
                let receipt = svc
                    .apply_edit(&edit_op(k, snap.doc()))
                    .unwrap_or_else(|e| panic!("edit {k}: {e}"));
                assert_eq!(receipt.version, (k + 1) as u64, "versions are sequential");
                // Let readers drain a few requests on this snapshot so
                // the hammer spans the whole rotation history.
                std::thread::sleep(Duration::from_millis(3));
            }
            done.store(true, Ordering::Release);
        });
    });

    let stats = svc.stats();
    assert_eq!(stats.edits_applied, ROTATIONS as u64);
    assert_eq!(stats.snapshot_rotations, ROTATIONS as u64);
    assert!(
        stats.plan_cache_invalidations > 0,
        "rotations over cached book plans must invalidate"
    );
    assert_eq!(stats.queries_rejected, 0, "rotation must never shed readers");
    let snap = svc.snapshot();
    assert_eq!(snap.version(), ROTATIONS as u64);
    let gtp = gtpquery::parse_twig(queries[0]).unwrap();
    assert_eq!(twig2stack::evaluate(snap.doc(), &gtp), oracles[0][ROTATIONS]);
}

/// Deterministic half of the protocol: invalidation is keyed by the set
/// of changed labels, visible through the `plan_cache_*` counters.
#[test]
fn rotation_invalidates_changed_label_plans_and_keeps_disjoint_ones() {
    let svc = QueryService::build(base_doc(), ServiceConfig::default());
    let book_q = "//lib/book/title";
    let mag_q = "//shelf/mag";

    // Priming edit: the parse-built document has dense positions, so
    // the first insert renumbers and rebuilds (full invalidation); it
    // leaves stride gaps for the patch below.
    let receipt = svc
        .apply_edit(&edit_op(0, svc.snapshot().doc()))
        .unwrap();
    assert!(receipt.rebuilt, "first edit on a dense document renumbers");

    svc.execute(book_q).unwrap();
    svc.execute(mag_q).unwrap();
    let s = svc.stats();
    assert_eq!(s.plan_cache_misses, 2, "both plans analyzed and cached");
    assert_eq!(s.plan_cache_invalidations, 0, "nothing cached before the priming edit");

    // Gap-fitting insert of a known-path record: patches in place and
    // invalidates only the plans scanning book/author/title.
    let receipt = svc
        .apply_edit(&edit_op(1, svc.snapshot().doc()))
        .unwrap();
    assert!(!receipt.rebuilt, "gap-fitting known-path insert patches");
    assert_eq!(receipt.invalidated_plans, 1, "only the book plan is invalidated");

    let before = svc.stats();
    svc.execute(mag_q).unwrap();
    let s = svc.stats();
    assert_eq!(s.plan_cache_hits, before.plan_cache_hits + 1, "mag plan survived");
    svc.execute(book_q).unwrap();
    let s = svc.stats();
    assert_eq!(s.plan_cache_misses, before.plan_cache_misses + 1, "book plan re-analyzed");

    assert_eq!(s.edits_applied, 2);
    assert_eq!(s.snapshot_rotations, 2);
    assert_eq!(s.plan_cache_invalidations, 1);

    // And the rotated snapshot answers from the edited document.
    let snap = svc.snapshot();
    let gtp = gtpquery::parse_twig(book_q).unwrap();
    assert_eq!(svc.execute(book_q).unwrap(), twig2stack::evaluate(snap.doc(), &gtp));
}
