//! The metamorphic conformance sweep: every invariant over seeded
//! random (document, query) pairs from all four dataset generators.
//!
//! This is the bounded, deterministic slice of the fuzzing subsystem
//! that runs on plain `cargo test`; the `twigfuzz` binary runs the same
//! loop open-endedly. A failure here prints the shrunk pair as a
//! ready-to-commit `.t2s` case.

use twigfuzz::{run_session, Dataset, SessionConfig};

/// ≥ 500 pairs per dataset generator (ISSUE acceptance floor).
const CASES_PER_DATASET: usize = 500;

#[test]
fn invariants_hold_across_all_dataset_generators() {
    let cfg = SessionConfig {
        seed: 0x7716_2574_ACC5_0000,
        cases_per_dataset: CASES_PER_DATASET,
        datasets: Dataset::ALL.to_vec(),
        ..Default::default()
    };
    let report = run_session(&cfg);
    assert_eq!(report.cases, CASES_PER_DATASET * Dataset::ALL.len());
    if !report.failures.is_empty() {
        let mut msg = String::new();
        for f in &report.failures {
            msg.push_str(&format!(
                "\n[{} / {}] {}\n--- .t2s case (drop into corpus/) ---\n{}",
                f.dataset.name(),
                f.invariant.name(),
                f.message,
                f.case.serialize()
            ));
        }
        panic!("{} invariant violation(s):{msg}", report.failures.len());
    }
    // The sweep must actually assert things: a gate regression that
    // skips everything should fail loudly, not pass vacuously.
    assert!(
        report.passed > report.cases,
        "only {} checks passed over {} pairs — soundness gates too strict?",
        report.passed,
        report.cases
    );
}
