//! Differential testing of the parallel partitioned evaluator: for every
//! document × query × thread count, `evaluate_parallel` must produce the
//! *identical* `ResultSet` (same rows, same order) and the identical
//! factorized count as the serial engine. Documents include single-record
//! and path-shaped trees (chunk count < 2 ⇒ serial fallback) as well as
//! the three realistic dataset generators.

use gtpquery::{parse_twig, Axis, Gtp, GtpBuilder, ParallelFallback, QueryAnalysis, Role};
use proptest::prelude::*;
use twig2stack::{
    count_results, evaluate, evaluate_parallel, match_document, match_document_parallel,
    parallel_plan, FallbackReason, MatchOptions, ParallelPlan,
};
use xmlgen::{
    generate_dblp, generate_random_tree, generate_treebank, generate_xmark, DblpConfig,
    RandomTreeConfig, TreebankConfig, XmarkConfig,
};
use xmldom::{write, Document, Indent};

const LABELS: [&str; 5] = ["a", "b", "c", "d", "*"];

/// One random query node: label, parent (index into already-built nodes),
/// axis, optionality, role.
fn node_spec() -> impl Strategy<Value = (usize, prop::sample::Index, bool, bool, u8)> {
    (
        0usize..LABELS.len(),
        any::<prop::sample::Index>(),
        any::<bool>(),
        prop::bool::weighted(0.25),
        0u8..3,
    )
}

fn build_query(specs: Vec<(usize, prop::sample::Index, bool, bool, u8)>, rooted: bool) -> Gtp {
    let role = |r: u8| match r {
        0 => Role::Return,
        1 => Role::NonReturn,
        _ => Role::GroupReturn,
    };
    let mut b = GtpBuilder::new(LABELS[specs[0].0], rooted);
    let root = b.root();
    b.role(root, role(specs[0].4));
    let mut ids = vec![root];
    for &(label, parent, pc, optional, r) in &specs[1..] {
        let parent = ids[parent.index(ids.len())];
        let axis = if pc { Axis::Child } else { Axis::Descendant };
        ids.push(b.add(parent, LABELS[label], axis, optional, role(r)));
    }
    let gtp = b.build();
    let analysis = QueryAnalysis::new(&gtp);
    if analysis.enumerable() && !analysis.columns().is_empty() {
        gtp
    } else {
        gtp.all_return()
    }
}

fn query_strategy() -> impl Strategy<Value = Gtp> {
    (prop::collection::vec(node_spec(), 1..6), any::<bool>())
        .prop_map(|(specs, rooted)| build_query(specs, rooted))
}

/// Random trees from 1 node (root only — no chunks at all) up: small
/// alphabets force recursive nestings, low depth bounds force bushy
/// multi-chunk shapes, high ones force path-shaped fallbacks.
fn doc_strategy() -> impl Strategy<Value = Document> {
    (1usize..80, 1usize..4, 2u32..10, 0u32..100, any::<u64>()).prop_map(
        |(nodes, alphabet, max_depth, depth_bias, seed)| {
            generate_random_tree(&RandomTreeConfig {
                nodes,
                alphabet,
                max_depth,
                depth_bias,
                seed,
                text_vocab: 0,
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(250))]

    /// The headline property: identical `ResultSet` and identical
    /// factorized count, for any thread count, on random documents ×
    /// random GTPs.
    #[test]
    fn parallel_matches_serial(
        doc in doc_strategy(),
        gtp in query_strategy(),
        threads in 2usize..9,
    ) {
        let expected = evaluate(&doc, &gtp);
        let got = evaluate_parallel(&doc, &gtp, threads);
        prop_assert_eq!(
            &got, &expected,
            "threads={} doc={} query={}",
            threads, write(&doc, Indent::None), gtp
        );

        let (stm, ss) = match_document(&doc, &gtp, MatchOptions::default());
        let (ptm, ps) = match_document_parallel(&doc, &gtp, MatchOptions::default(), threads);
        ptm.check_invariants();
        prop_assert_eq!(count_results(&ptm), count_results(&stm));
        prop_assert_eq!(ps.elements_pushed, ss.elements_pushed);
        prop_assert_eq!(ps.edges_created, ss.edges_created);
        prop_assert_eq!(ps.final_bytes, ss.final_bytes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same equivalence on the realistic dataset generators, with each
    /// dataset's idiomatic query shapes.
    #[test]
    fn parallel_matches_serial_on_datasets(seed in any::<u64>(), threads in 2usize..7) {
        let corpora: [(Document, &[&str]); 3] = [
            (
                generate_dblp(&DblpConfig::tiny(seed)),
                &[
                    "//dblp/inproceedings[title]/author",
                    "//dblp/article[author][.//title]//year",
                    "//dblp!/inproceedings[title!]/author@",
                ],
            ),
            (
                generate_treebank(&TreebankConfig { sentences: 12, max_depth: 16, seed }),
                &["//s/vp/pp[in]/np", "//vp[dt]//nn", "//s!/np[?pp@]"],
            ),
            (
                generate_xmark(&XmarkConfig::tiny(seed)),
                &[
                    "/site/open_auctions[.//bidder/personref]//reserve",
                    "//item[location]/description//keyword",
                    "//person[?homepage]/name",
                ],
            ),
        ];
        for (doc, queries) in &corpora {
            for q in *queries {
                let gtp = parse_twig(q).unwrap();
                prop_assert_eq!(
                    evaluate_parallel(doc, &gtp, threads),
                    evaluate(doc, &gtp),
                    "threads={} query={}", threads, q
                );
            }
        }
    }
}

/// A rooted single-node query leaves the workers nothing to do: every
/// candidate lives on the spine. The plan must say so, and the answer must
/// still be correct.
#[test]
fn rooted_dblp_takes_serial_fallback() {
    let doc = generate_dblp(&DblpConfig::tiny(7));
    let gtp = parse_twig("/dblp").unwrap();
    assert_eq!(
        parallel_plan(&doc, &gtp, 8),
        ParallelPlan::Serial(FallbackReason::Query(ParallelFallback::RootedSingleNode))
    );
    assert_eq!(evaluate_parallel(&doc, &gtp, 8), evaluate(&doc, &gtp));
    // The same corpus with a multi-node query does partition.
    let multi = parse_twig("//dblp/article/author").unwrap();
    assert!(matches!(
        parallel_plan(&doc, &multi, 8),
        ParallelPlan::Partitioned { chunks: 2.., .. }
    ));
}
