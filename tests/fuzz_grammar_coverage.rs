//! The query generator covers the full GTP grammar, and every generated
//! query round-trips losslessly through the parser.
//!
//! Coverage is asserted positively: across a seeded batch, every `Axis`,
//! `Role`, `NodeTest`, and `ValuePred` variant must appear, along with
//! optional edges, rooted and unrooted queries, and at least one
//! OR-group. A probability tweak that silently stops exercising part of
//! the grammar fails here, not in a weaker fuzzing run.

use gtpquery::{parse_twig, serialize, structurally_equal, Axis, NodeTest, Role, ValuePred};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use twigfuzz::{generate_query, GenConfig, Vocabulary};
use xmldom::parse;

#[test]
fn generator_covers_grammar_and_round_trips() {
    // A document with both labels and text payloads, so value
    // predicates have something to sample.
    let doc = parse(
        "<site><person>alice</person><person>bob smith</person>\
         <item><name>chair</name><price>10</price></item></site>",
    )
    .unwrap();
    let vocab = Vocabulary::from_document(&doc);
    let cfg = GenConfig::default();
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);

    let (mut child, mut desc, mut optional) = (false, false, false);
    let (mut ret, mut non_ret, mut group) = (false, false, false);
    let (mut name, mut wildcard) = (false, false);
    let (mut eq_pred, mut contains_pred) = (false, false);
    let (mut rooted, mut unrooted, mut or_group) = (false, false, false);

    for _ in 0..1500 {
        let gtp = generate_query(&mut rng, &vocab, &cfg);

        if gtp.is_rooted() {
            rooted = true;
        } else {
            unrooted = true;
        }
        for q in gtp.preorder() {
            match gtp.test(q) {
                NodeTest::Name(_) => name = true,
                NodeTest::Wildcard => wildcard = true,
            }
            match gtp.role(q) {
                Role::Return => ret = true,
                Role::NonReturn => non_ret = true,
                Role::GroupReturn => group = true,
            }
            if let Some(e) = gtp.edge(q) {
                match e.axis {
                    Axis::Child => child = true,
                    Axis::Descendant => desc = true,
                }
                if e.optional {
                    optional = true;
                }
            }
            match gtp.value_pred(q) {
                Some(ValuePred::TextEquals(_)) => eq_pred = true,
                Some(ValuePred::TextContains(_)) => contains_pred = true,
                None => {}
            }
            if let Some(p) = gtp.parent(q) {
                let members = gtp
                    .children(p)
                    .iter()
                    .filter(|&&c| gtp.or_group(c) == gtp.or_group(q))
                    .count();
                if members > 1 {
                    or_group = true;
                }
            }
        }

        // Lossless round-trip through the concrete syntax.
        let s = serialize(&gtp);
        let re = parse_twig(&s).unwrap_or_else(|e| panic!("`{s}` does not re-parse: {e}"));
        assert!(structurally_equal(&gtp, &re), "lossy round-trip: `{s}`");
    }

    let coverage = [
        (child, "Axis::Child"),
        (desc, "Axis::Descendant"),
        (optional, "optional edge"),
        (ret, "Role::Return"),
        (non_ret, "Role::NonReturn"),
        (group, "Role::GroupReturn"),
        (name, "NodeTest::Name"),
        (wildcard, "NodeTest::Wildcard"),
        (eq_pred, "ValuePred::TextEquals"),
        (contains_pred, "ValuePred::TextContains"),
        (rooted, "rooted query"),
        (unrooted, "unrooted query"),
        (or_group, "OR-group"),
    ];
    let missing: Vec<&str> = coverage
        .iter()
        .filter_map(|&(hit, what)| (!hit).then_some(what))
        .collect();
    assert!(missing.is_empty(), "grammar features never generated: {missing:?}");
}
