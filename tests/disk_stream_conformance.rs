//! Cross-engine conformance with the on-disk element streams.
//!
//! TwigStack is generic over [`xmlindex::ElemStream`]; the fuzz harness
//! exercises it over in-memory [`SliceStream`]s. This sweep closes the
//! remaining gap: the same generated full-twig queries must produce the
//! same results when the streams come from a serialized region index on
//! disk ([`DiskRegionStream`]) instead.

use gtpquery::NodeTest;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use twigbaselines::{build_streams, naive_evaluate, try_twig_stack_with, twig_stack, TwigStackStats};
use twigfuzz::{generate_query, Dataset, GenConfig, Vocabulary};
use xmlindex::{write_region_index, DiskRegionIndex, ElementIndex, PruningPolicy, SliceStream};

/// Full-twig shapes only (the TwigStack contract), with named node
/// tests only (a disk index serves one label per stream; wildcard
/// merging is the in-memory `build_streams` concern, tested elsewhere).
fn full_twig_gen() -> GenConfig {
    GenConfig {
        wildcard_prob: 0.0,
        optional_prob: 0.0,
        non_return_prob: 0.0,
        group_return_prob: 0.0,
        or_pair_prob: 0.0,
        value_pred_prob: 0.0,
        ..Default::default()
    }
}

#[test]
fn disk_streams_agree_with_slice_streams_and_oracle() {
    let dir = std::env::temp_dir().join(format!("t2s-diskfuzz-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = full_twig_gen();

    for dataset in Dataset::ALL {
        let doc = dataset.generate(0xD15C);
        let vocab = Vocabulary::from_document(&doc);
        let rpath = dir.join(format!("{}.regions.idx", dataset.name()));
        write_region_index(&doc, &rpath).unwrap();
        let disk = DiskRegionIndex::open(&rpath).unwrap();
        let mem = ElementIndex::build(&doc);

        let mut rng = SmallRng::seed_from_u64(0xD15C ^ dataset.name().len() as u64);
        for case in 0..50 {
            let gtp = generate_query(&mut rng, &vocab, &cfg);
            let expected = naive_evaluate(&doc, &gtp).sorted();

            let owned = build_streams(&mem, doc.labels(), &gtp);
            let slices: Vec<SliceStream<'_>> = owned.iter().map(|v| SliceStream::new(v)).collect();
            let mut ts = TwigStackStats::default();
            let via_mem = twig_stack(&gtp, slices, &mut ts).sorted();
            assert_eq!(
                via_mem, expected,
                "[{} case {case}] slice streams vs oracle, query {gtp}",
                dataset.name()
            );

            // Vocabulary labels come from the document, so every named
            // test has a stream in the disk index.
            let disk_streams = gtp
                .iter()
                .map(|q| match gtp.test(q) {
                    NodeTest::Name(n) => disk.stream(n).expect("label present in index"),
                    NodeTest::Wildcard => unreachable!("wildcard_prob is zero"),
                })
                .collect();
            // Disk streams go through the fallible driver: an I/O error
            // would surface as `Err`, not as a truncated result set.
            let mut ts = TwigStackStats::default();
            let via_disk = try_twig_stack_with(&gtp, disk_streams, PruningPolicy::Disabled, &mut ts)
                .expect("intact disk index")
                .sorted();
            assert_eq!(
                via_disk, expected,
                "[{} case {case}] disk streams vs oracle, query {gtp}",
                dataset.name()
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
