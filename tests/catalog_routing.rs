//! Property tests for the catalog's Bloom router and cross-shard merge
//! (DESIGN.md §16).
//!
//! The routing contract has two asymmetric halves: **false negatives
//! are forbidden** (a skipped document provably has no match — routing
//! must never change an answer), while **false positives are merely
//! bounded** (a routed document may turn out empty; the Bloom doc
//! comment derives the per-name ceiling these tests pin). The third
//! test checks the half the router does not cover: however documents
//! land on shards, the gather must read back in serial doc-id order.

use twigserve::{CatalogConfig, CatalogService};
use xmldom::Document;
use xmlgen::{generate_random_tree, RandomTreeConfig};

/// A seeded catalog of small random documents over `a..` alphabets —
/// dense twig matches, plenty of shared and disjoint label sets.
fn seeded_docs(seed: u64, count: usize, alphabet: usize) -> Vec<Document> {
    (0..count)
        .map(|i| {
            generate_random_tree(&RandomTreeConfig {
                nodes: 50,
                alphabet,
                max_depth: 8,
                depth_bias: 50,
                seed: seed * 1_000 + i as u64,
                text_vocab: 0,
            })
        })
        .collect()
}

fn catalog(docs: &[Document], shards: usize) -> CatalogService {
    CatalogService::build_heap(
        docs.to_vec(),
        CatalogConfig {
            shards,
            ..CatalogConfig::default()
        },
    )
}

/// Twigs over the generator's alphabet: child/descendant mixes,
/// predicates, OR-groups, wildcards — everything the router must route
/// conservatively.
const QUERIES: &[&str] = &[
    "//a//b",
    "//c[d]/e",
    "//a/b[c]",
    "//b[c! or d!]",
    "//e//f[a]",
    "//*[b]/c",
    "//f",
];

#[test]
fn routing_has_zero_false_negatives_across_seeded_catalogs() {
    for seed in 0..5u64 {
        let docs = seeded_docs(seed, 32, 6);
        for shards in [1usize, 4] {
            let cat = catalog(&docs, shards);
            for q in QUERIES {
                let gtp = gtpquery::parse_twig(q).expect("routing query parses");
                let routed = cat.routed_docs(q).expect("routing succeeds");
                for (id, doc) in docs.iter().enumerate() {
                    if !twig2stack::evaluate(doc, &gtp).is_empty() {
                        assert!(
                            routed.contains(&(id as u32)),
                            "seed {seed}, {shards} shards, {q}: doc {id} matches \
                             but was not routed"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn bloom_false_positive_rate_stays_under_the_documented_ceiling() {
    // Single-letter labels over the full a–z alphabet give the densest
    // Bloom fill the generator can produce (≤ 26 names, ≤ 104 of 256
    // bits); the LabelBloom doc comment derives ≈13% per probed name at
    // 64 labels, so at this fill the measured rate must sit well under
    // that. Probed labels ("zz0"…) occur in no document, so every
    // routed (probe, doc) pair is a false positive by construction.
    let docs = seeded_docs(7, 120, 26);
    let cat = catalog(&docs, 4);
    let probes = 400usize;
    let mut false_positives = 0usize;
    for i in 0..probes {
        let q = format!("//zz{i}");
        false_positives += cat.routed_docs(&q).expect("probe routes").len();
    }
    let rate = false_positives as f64 / (probes * docs.len()) as f64;
    assert!(
        rate <= 0.13,
        "Bloom false-positive rate {rate:.4} above the documented ceiling"
    );
}

#[test]
fn label_free_queries_route_to_every_document() {
    // Satellite bugfix pin (ISSUE 10a): a query whose mandatory path is
    // all wildcards / optional / OR-grouped has an empty
    // `required_label_names()` — no routing evidence. The catalog must
    // then route to ALL documents, never zero, or matches silently
    // vanish. Answers must also stay byte-equal to the serial oracle.
    let docs = seeded_docs(11, 24, 6);
    let label_free = ["//*", "//*/*", "//*[?a]", "//*[a! or b!]", "//*//*[?c@]"];
    for q in label_free {
        let gtp = gtpquery::parse_twig(q).expect("label-free query parses");
        assert!(
            gtp.required_label_names().is_empty(),
            "{q}: expected an empty required-label set"
        );
    }
    for shards in [1usize, 3] {
        let cat = catalog(&docs, shards);
        for q in label_free {
            let routed = cat.routed_docs(q).expect("routing succeeds");
            assert_eq!(
                routed.len(),
                docs.len(),
                "{shards} shards, {q}: a label-free query must route everywhere"
            );
            let serial = cat.execute_serial(q).expect("serial oracle");
            let scattered = cat.execute(q).expect("scatter-gather");
            assert_eq!(scattered, serial, "{shards} shards, {q}: answers diverged");
        }
    }
}

#[test]
fn saturated_bloom_keeps_zero_false_negatives_and_routes_everything() {
    // Satellite bugfix pin (ISSUE 10c): LabelBloom is 256 bits with
    // k = 4 probes. A document with hundreds of distinct labels drives
    // the filter to (near-)full saturation — the failure mode to guard
    // against is a saturated filter *mis-skipping*. The contract is the
    // opposite: a full Bloom answers "maybe" for every name, degrading
    // to route-everything while staying zero-false-negative.
    let wide: String = {
        let mut s = String::from("<r>");
        for i in 0..600 {
            s.push_str(&format!("<l{i}/>"));
        }
        s.push_str("</r>");
        s
    };
    let saturated = xmldom::parse(&wide).expect("saturated doc parses");
    assert!(
        saturated.labels().len() > 64,
        "need >64 distinct labels to saturate the Bloom"
    );
    let mut docs = seeded_docs(13, 7, 4);
    docs.push(saturated);
    let sat_id = (docs.len() - 1) as u32;
    let cat = catalog(&docs, 3);
    // Zero false negatives: every present label still routes to the
    // saturated document, and its answers survive end to end.
    for q in ["//r/l0", "//l17", "//r[l599]/l300", "//r//l123"] {
        let routed = cat.routed_docs(q).expect("routing succeeds");
        assert!(
            routed.contains(&sat_id),
            "{q}: saturated Bloom mis-skipped its own document"
        );
        let serial = cat.execute_serial(q).expect("serial oracle");
        assert_eq!(cat.execute(q).expect("scatter-gather"), serial, "{q}");
        assert!(
            serial.iter().any(|h| h.doc == sat_id),
            "{q}: the saturated document's matches were lost"
        );
    }
    // Degrade-to-route-everything: 600 distinct labels × 4 probes set
    // every bit (deterministic for this fixed label set), so names the
    // document does NOT contain still answer "maybe" — the saturated
    // document is routed for any probe, it can only be over-routed.
    for i in 0..50 {
        let probe = format!("//zz{i}");
        let routed = cat.routed_docs(&probe).expect("probe routes");
        assert!(
            routed.contains(&sat_id),
            "{probe}: a saturated Bloom must degrade to route-everything, \
             not report absence"
        );
    }
}

#[test]
fn cross_shard_merge_returns_serial_doc_id_order() {
    let docs = seeded_docs(3, 30, 6);
    for shards in [2usize, 3, 5] {
        let cat = catalog(&docs, shards);
        for q in QUERIES {
            let serial = cat.execute_serial(q).expect("serial oracle");
            let scattered = cat.execute(q).expect("scatter-gather");
            assert_eq!(
                scattered, serial,
                "{shards} shards, {q}: scatter-gather diverged from serial order"
            );
            let ids: Vec<u32> = scattered.iter().map(|h| h.doc).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(
                ids, sorted,
                "{shards} shards, {q}: doc ids not strictly ascending"
            );
            let routed = cat.routed_docs(q).expect("routing succeeds");
            for id in &ids {
                assert!(
                    routed.contains(id),
                    "{shards} shards, {q}: hit {id} was not routed"
                );
            }
        }
    }
}
