//! Fault injection: a truncated on-disk region index must surface as a
//! typed [`QueryError::Stream`] from every indexed driver, never as a
//! silently truncated result set.
//!
//! The scenario mirrors a partially written or corrupted index file:
//! the table of contents is intact, so the index opens and streams
//! start delivering elements, but the final records of a segment are
//! chopped mid-record. Before the fallible drivers existed, both
//! engines would drain such a stream to its (early) end and report
//! whatever matches happened to be complete — indistinguishable from a
//! correct empty tail.

use gtpquery::{parse_twig, CancelToken, NodeTest, QueryError};
use twig2stack::MatchOptions;
use twigbaselines::{try_twig_stack_with, TwigStackStats};
use twigserve::{QueryService, ServeError, ServiceConfig};
use xmldom::{parse, Document, EditError, EditOp, Label};
use xmlindex::{
    write_mapped_index, write_region_index, DiskRegionIndex, DiskRegionStream, MappedIndex,
    MappedOpenError, PruningPolicy, SectionId,
};

/// A document whose `b` segment is large enough that chopping the file
/// tail lands mid-record inside it (`b` is interned after `a`, so its
/// segment is written last).
fn sample_doc() -> Document {
    let body = "<b/>".repeat(40);
    parse(&format!("<a>{body}</a>")).unwrap()
}

/// Write the region index for `doc`, then chop `chop` bytes off the end
/// of the file — TOC intact, final records gone.
fn truncated_index(doc: &Document, name: &str, chop: u64) -> (DiskRegionIndex, std::path::PathBuf) {
    let path = std::env::temp_dir().join(format!("t2s-fault-{}-{name}", std::process::id()));
    write_region_index(doc, &path).unwrap();
    let len = std::fs::metadata(&path).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(len - chop).unwrap();
    drop(f);
    (DiskRegionIndex::open(&path).unwrap(), path)
}

/// One disk stream per query node, in query-node order.
fn query_streams(
    doc: &Document,
    disk: &DiskRegionIndex,
    gtp: &gtpquery::Gtp,
) -> Vec<(Label, DiskRegionStream)> {
    gtp.iter()
        .map(|q| match gtp.test(q) {
            NodeTest::Name(n) => (
                doc.labels().get(n).expect("label present in document"),
                disk.stream(n).expect("label present in index"),
            ),
            NodeTest::Wildcard => unreachable!("test queries use named tests"),
        })
        .collect()
}

#[test]
fn twigstack_reports_truncated_disk_stream() {
    let doc = sample_doc();
    let gtp = parse_twig("//a/b").unwrap();
    let (disk, path) = truncated_index(&doc, "twigstack", 30);

    let streams = query_streams(&doc, &disk, &gtp)
        .into_iter()
        .map(|(_, s)| s)
        .collect();
    let mut stats = TwigStackStats::default();
    let err = match try_twig_stack_with(&gtp, streams, PruningPolicy::Disabled, &mut stats) {
        Ok(rs) => panic!(
            "truncated index must not produce a result set ({} rows)",
            rs.len()
        ),
        Err(e) => e,
    };
    match err {
        QueryError::Stream(e) => {
            assert!(e.context.contains("'b'"), "context names the segment: {e}");
            assert_eq!(e.source.kind(), std::io::ErrorKind::UnexpectedEof);
        }
        other => panic!("expected QueryError::Stream, got {other}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn twig2stack_reports_truncated_disk_stream() {
    let doc = sample_doc();
    let gtp = parse_twig("//a[b]").unwrap();
    let (disk, path) = truncated_index(&doc, "twig2stack", 30);

    let streams = query_streams(&doc, &disk, &gtp);
    let err = match twig2stack::try_match_streams(
        &doc,
        &gtp,
        streams,
        MatchOptions::default(),
        &CancelToken::never(),
    ) {
        Ok((rs, _)) => panic!(
            "truncated index must not produce a result set ({} rows)",
            rs.len()
        ),
        Err(e) => e,
    };
    match err {
        QueryError::Stream(e) => {
            assert!(e.context.contains("'b'"), "context names the segment: {e}");
            assert_eq!(e.source.kind(), std::io::ErrorKind::UnexpectedEof);
        }
        other => panic!("expected QueryError::Stream, got {other}"),
    }
    std::fs::remove_file(&path).ok();
}

/// Flip one byte in the middle of every v3 section in turn: each flip
/// must surface at open as a typed [`MappedOpenError::ChecksumMismatch`]
/// naming exactly the corrupted section — a mapped index never serves a
/// silently wrong byte.
#[test]
fn mapped_index_byte_flip_names_the_corrupt_section() {
    let doc = sample_doc();
    let path = std::env::temp_dir().join(format!("t2s-fault-v3-{}", std::process::id()));
    write_mapped_index(&doc, &path).unwrap();
    let pristine = std::fs::read(&path).unwrap();
    // Recover each section's byte range from the TOC (header 24 bytes,
    // then 32-byte entries: id u32, reserved u32, offset u64, len u64,
    // checksum u64).
    let section_count = u32::from_le_bytes(pristine[12..16].try_into().unwrap()) as usize;
    assert_eq!(section_count, SectionId::ALL.len());
    let mut flipped_sections = 0;
    for i in 0..section_count {
        let at = 24 + i * 32;
        let raw_id = u32::from_le_bytes(pristine[at..at + 4].try_into().unwrap());
        let offset =
            u64::from_le_bytes(pristine[at + 8..at + 16].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(pristine[at + 16..at + 24].try_into().unwrap()) as usize;
        if len == 0 {
            continue; // nothing to corrupt (a checksum of zero bytes)
        }
        let mut corrupt = pristine.clone();
        corrupt[offset + len / 2] ^= 0x40;
        std::fs::write(&path, &corrupt).unwrap();
        match MappedIndex::open(&path) {
            Err(MappedOpenError::ChecksumMismatch { section }) => {
                assert_eq!(
                    section as u32, raw_id,
                    "error must name the flipped section, not another"
                );
            }
            other => panic!(
                "flip in section id {raw_id} must fail its checksum, got {other:?}"
            ),
        }
        flipped_sections += 1;
    }
    assert!(flipped_sections >= 6, "most sections are non-empty and were exercised");
    // The pristine bytes still open cleanly — the failures above came
    // from the injected flips alone.
    std::fs::write(&path, &pristine).unwrap();
    MappedIndex::open(&path).expect("pristine file verifies");
    std::fs::remove_file(&path).ok();
}

/// Editing a mapped (v3, read-only) service under an injected disk
/// fault: the first edit materializes a heap snapshot, after which the
/// backing file is dead weight — corrupting or deleting it must not
/// perturb the edited service, and a rejected edit must surface as a
/// typed [`ServeError::Edit`] with the mapped snapshot still serving.
#[test]
fn edited_mapped_service_survives_backing_file_corruption() {
    let doc = sample_doc();
    let path = std::env::temp_dir().join(format!("t2s-fault-map-edit-{}", std::process::id()));
    write_mapped_index(&doc, &path).unwrap();
    let svc = QueryService::open_mapped(doc, &path, ServiceConfig::default()).unwrap();
    let gtp = parse_twig("//a/b").unwrap();
    assert_eq!(svc.execute("//a/b").unwrap().len(), 40, "mapped baseline");

    // A rejected edit is a typed error, not a panic, and changes
    // nothing: the snapshot still serves from the map.
    let bogus = EditOp::DeleteSubtree { target: xmldom::NodeId::from_index(999) };
    match svc.apply_edit(&bogus) {
        Err(ServeError::Edit(EditError::InvalidNode(_))) => {}
        other => panic!("expected ServeError::Edit(InvalidNode), got {other:?}"),
    }
    let snap = svc.snapshot();
    assert_eq!(snap.version(), 0, "rejected edit must not rotate");
    assert!(snap.index().as_mapped().is_some(), "snapshot still mapped");

    // A real edit on the read-only backend rebuilds to the heap.
    let root = snap.doc().root();
    let receipt = svc
        .apply_edit(&EditOp::InsertSubtree {
            parent: Some(root),
            position: 0,
            subtree: parse("<b/>").unwrap(),
        })
        .unwrap();
    assert!(receipt.rebuilt, "v3 is read-only; the edit must materialize a heap index");
    let snap = svc.snapshot();
    assert!(snap.index().as_mapped().is_none(), "post-edit snapshot is heap-backed");
    drop(snap);

    // Kill the backing file outright: the heap snapshot owes it nothing.
    std::fs::write(&path, b"garbage").unwrap();
    let rows = svc.execute("//a/b").unwrap();
    assert_eq!(rows.len(), 41, "heap snapshot serves the edited document");
    let snap = svc.snapshot();
    assert_eq!(rows, twig2stack::evaluate(snap.doc(), &gtp));

    // Further edits keep patching the heap lineage with the file gone.
    std::fs::remove_file(&path).unwrap();
    let receipt = svc
        .apply_edit(&EditOp::DeleteSubtree {
            target: snap.doc().children(snap.doc().root()).next().unwrap(),
        })
        .unwrap();
    assert_eq!(receipt.version, 2);
    assert_eq!(svc.execute("//a/b").unwrap().len(), 40);

    // And the corrupted bytes themselves can only fail typed at open.
    std::fs::write(&path, b"garbage").unwrap();
    assert!(MappedIndex::open(&path).is_err(), "corrupt file must not open");
    std::fs::remove_file(&path).ok();
}

/// The same pipelines over an intact index still succeed — the fault
/// paths above fail because of the injected truncation, not because
/// disk streams are unusable.
#[test]
fn intact_index_still_evaluates_cleanly() {
    let doc = sample_doc();
    let gtp = parse_twig("//a/b").unwrap();
    let path = std::env::temp_dir().join(format!("t2s-fault-intact-{}", std::process::id()));
    write_region_index(&doc, &path).unwrap();
    let disk = DiskRegionIndex::open(&path).unwrap();

    let streams = query_streams(&doc, &disk, &gtp)
        .into_iter()
        .map(|(_, s)| s)
        .collect();
    let mut stats = TwigStackStats::default();
    let via_twigstack = try_twig_stack_with(&gtp, streams, PruningPolicy::Disabled, &mut stats)
        .expect("intact index evaluates");
    assert_eq!(via_twigstack.len(), 40, "one row per (a, b) pair");

    let streams = query_streams(&doc, &disk, &gtp);
    let (via_t2s, _) = twig2stack::try_match_streams(
        &doc,
        &gtp,
        streams,
        MatchOptions::default(),
        &CancelToken::never(),
    )
    .expect("intact index evaluates");
    assert_eq!(via_t2s.sorted(), via_twigstack.sorted());
    std::fs::remove_file(&path).ok();
}
