//! Subscription lifecycle under edits (DESIGN.md §17): register →
//! mutate the document through the service → assert every notification
//! agrees with re-running the registered query on the rotated snapshot.
//!
//! Also pins the streaming-cancellation satellite fix: a deadline or
//! cancellation mid-stream must surface as a typed `QueryError`, never
//! run to completion.

use gtpquery::{parse_twig, CancelToken, QueryError};
use std::sync::Arc;
use std::time::Duration;
use twigserve::{QueryService, ServiceConfig, SubscriptionService};
use xmldom::{parse, EditOp, NodeId};
use xmlindex::ElementIndex;

fn service(xml: &str) -> Arc<QueryService> {
    let doc = parse(xml).unwrap();
    let index = ElementIndex::build(&doc);
    Arc::new(QueryService::new(doc, index, ServiceConfig::default()))
}

/// The registered query re-run solo on the service's current snapshot —
/// the oracle every notification pass must agree with.
fn solo(subs: &SubscriptionService, query: &str) -> gtpquery::ResultSet {
    let snap = subs.service().snapshot();
    twig2stack::evaluate(snap.doc(), &parse_twig(query).unwrap())
}

#[test]
fn notifications_track_created_and_deleted_subtrees() {
    let subs = SubscriptionService::new(service("<lib><shelf><book/></shelf></lib>"));
    let query = "//shelf/book";
    let id = subs.register(query).unwrap();
    assert_eq!(subs.matches(id).unwrap().len(), 1);

    // Create a matching subtree: a second shelf with two books.
    let shelf = parse("<shelf><book/><book/></shelf>").unwrap();
    let lib = subs.service().snapshot().doc().root();
    let (receipt, notes) = subs
        .apply_edit(&EditOp::InsertSubtree {
            parent: Some(lib),
            position: 1,
            subtree: shelf,
        })
        .unwrap();
    assert_eq!(notes.len(), 1, "one subscription changed");
    assert_eq!(notes[0].sub, id);
    assert_eq!(notes[0].version, receipt.version);
    assert_eq!(notes[0].added.len(), 2, "two new books matched");
    assert!(notes[0].removed.is_empty());
    // The published match set equals re-running the query on the
    // rotated snapshot.
    assert_eq!(subs.matches(id).unwrap(), solo(&subs, query));
    assert_eq!(subs.matches(id).unwrap().len(), 3);

    // Delete the original shelf: its book leaves the match set.
    let first_shelf = {
        let snap = subs.service().snapshot();
        snap.doc().children(snap.doc().root()).next().unwrap()
    };
    let (_, notes) = subs
        .apply_edit(&EditOp::DeleteSubtree {
            target: first_shelf,
        })
        .unwrap();
    assert_eq!(notes.len(), 1);
    assert_eq!(notes[0].removed.len(), 1);
    assert!(notes[0].added.is_empty());
    assert_eq!(subs.matches(id).unwrap(), solo(&subs, query));
    assert_eq!(subs.matches(id).unwrap().len(), 2);

    // An edit that cannot affect the query produces no notification.
    let snap = subs.service().snapshot();
    let shelf_node = snap.doc().children(snap.doc().root()).next().unwrap();
    drop(snap);
    let pamphlet = parse("<pamphlet/>").unwrap();
    let (_, notes) = subs
        .apply_edit(&EditOp::InsertSubtree {
            parent: Some(shelf_node),
            position: 0,
            subtree: pamphlet,
        })
        .unwrap();
    assert!(notes.is_empty(), "irrelevant edit must not notify");
    assert_eq!(subs.matches(id).unwrap(), solo(&subs, query));
}

#[test]
fn batched_edits_notify_once_with_the_net_delta() {
    let subs = SubscriptionService::new(service("<a><b/></a>"));
    let id = subs.register("//a/b").unwrap();
    let root = subs.service().snapshot().doc().root();
    let ops = vec![
        EditOp::InsertSubtree {
            parent: Some(root),
            position: 1,
            subtree: parse("<b/>").unwrap(),
        },
        EditOp::InsertSubtree {
            parent: Some(root),
            position: 2,
            subtree: parse("<b/>").unwrap(),
        },
    ];
    let (receipt, notes) = subs.apply_edits(&ops).unwrap();
    assert_eq!(receipt.ops_applied, 2);
    assert_eq!(notes.len(), 1, "one notification for the whole batch");
    assert_eq!(notes[0].sub, id);
    assert_eq!(
        notes[0].added.len(),
        2,
        "the batch's net delta, not per-op deltas"
    );
    assert_eq!(subs.matches(id).unwrap(), solo(&subs, "//a/b"));
}

#[test]
fn multiple_subscriptions_notify_independently() {
    let subs = SubscriptionService::new(service("<a><b/><c/></a>"));
    let b_sub = subs.register("//a/b").unwrap();
    let c_sub = subs.register("//a/c").unwrap();
    let value_sub = subs.register("//a/d='x'").unwrap();
    assert_eq!(subs.matches(value_sub).unwrap().len(), 0);

    // One edit adds a matching `d='x'` but neither a `b` nor a `c`.
    let root = subs.service().snapshot().doc().root();
    let (_, notes) = subs
        .apply_edit(&EditOp::InsertSubtree {
            parent: Some(root),
            position: 2,
            subtree: parse("<d>x</d>").unwrap(),
        })
        .unwrap();
    // Only the value-predicate subscription fires (the DOM-driven
    // notification pass resolves text against the rotated snapshot).
    assert_eq!(notes.len(), 1);
    assert_eq!(notes[0].sub, value_sub);
    assert_eq!(notes[0].added.len(), 1);
    assert_eq!(subs.matches(b_sub).unwrap(), solo(&subs, "//a/b"));
    assert_eq!(subs.matches(c_sub).unwrap(), solo(&subs, "//a/c"));
    assert_eq!(subs.matches(value_sub).unwrap(), solo(&subs, "//a/d='x'"));
    assert!(subs.unregister(c_sub));
    assert_eq!(subs.len(), 2);
}

#[test]
fn poll_catches_edits_applied_behind_the_wrapper() {
    let subs = SubscriptionService::new(service("<a><b/></a>"));
    let id = subs.register("//a/b").unwrap();
    // Rotate the snapshot directly on the wrapped service.
    let root = subs.service().snapshot().doc().root();
    subs.service()
        .apply_edit(&EditOp::InsertSubtree {
            parent: Some(root),
            position: 1,
            subtree: parse("<b/>").unwrap(),
        })
        .unwrap();
    // The wrapper has not noticed yet; poll() reconciles.
    let notes = subs.poll();
    assert_eq!(notes.len(), 1);
    assert_eq!(notes[0].sub, id);
    assert_eq!(notes[0].added.len(), 1);
    assert_eq!(subs.matches(id).unwrap(), solo(&subs, "//a/b"));
    assert!(subs.poll().is_empty(), "second poll sees no further change");
}

/// Satellite bugfix pin (ISSUE 10b): `evaluate_streaming` gained
/// tag-granularity cancellation — a deadline mid-stream returns the
/// typed `QueryError` instead of running to completion.
#[test]
fn streaming_deadline_mid_stream_returns_query_error() {
    let gtp = parse_twig("//a/b").unwrap();
    // Large enough that the expired deadline is observed mid-stream.
    let mut xml = String::from("<a>");
    for _ in 0..2_000 {
        xml.push_str("<b/>");
    }
    xml.push_str("</a>");

    // An already-expired deadline: the first poll aborts the scan.
    let expired = CancelToken::with_deadline(Duration::ZERO);
    let err = twig2stack::try_evaluate_streaming(
        &xml,
        &gtp,
        twig2stack::MatchOptions::default(),
        &expired,
    )
    .unwrap_err();
    assert!(matches!(err, QueryError::DeadlineExceeded), "got {err:?}");

    // Explicit cancellation takes the other abort arm.
    let cancelled = CancelToken::new();
    cancelled.cancel();
    let err = twig2stack::try_evaluate_streaming(
        &xml,
        &gtp,
        twig2stack::MatchOptions::default(),
        &cancelled,
    )
    .unwrap_err();
    assert!(matches!(err, QueryError::Cancelled), "got {err:?}");

    // A never-token still runs to completion with the same answer as
    // the uncancellable entry point.
    let (rs, _) = twig2stack::try_evaluate_streaming(
        &xml,
        &gtp,
        twig2stack::MatchOptions::default(),
        &CancelToken::never(),
    )
    .unwrap();
    let (plain, _) =
        twig2stack::evaluate_streaming(&xml, &gtp, twig2stack::MatchOptions::default()).unwrap();
    assert_eq!(rs, plain);
    assert_eq!(rs.len(), 2_000);
}

/// Subscription runs are cancellable through the same token (the serve
/// layer's rotation hook).
#[test]
fn subscription_stream_honors_cancellation() {
    let auto = twig2stack::SharedAutomaton::build(vec![parse_twig("//a/b").unwrap()]);
    let token = CancelToken::new();
    token.cancel();
    let err = twig2stack::try_run_subscriptions(
        "<a><b/></a>",
        &auto,
        twig2stack::MatchOptions::default(),
        &token,
    )
    .unwrap_err();
    assert!(matches!(err, QueryError::Cancelled), "got {err:?}");
}

/// `NodeId`s in notifications refer to the rotated snapshot's document,
/// so consumers can resolve them against `service().snapshot()`.
#[test]
fn notification_nodes_resolve_against_the_rotated_snapshot() {
    let subs = SubscriptionService::new(service("<a><b/></a>"));
    let id = subs.register("//a/b").unwrap();
    let root = subs.service().snapshot().doc().root();
    let (_, notes) = subs
        .apply_edit(&EditOp::InsertSubtree {
            parent: Some(root),
            position: 1,
            subtree: parse("<b/>").unwrap(),
        })
        .unwrap();
    let snap = subs.service().snapshot();
    let added: Vec<NodeId> = notes[0]
        .added
        .rows
        .iter()
        .flat_map(|row| row.iter())
        .filter_map(|c| match c {
            gtpquery::Cell::Node(n) => Some(*n),
            _ => None,
        })
        .collect();
    assert!(!added.is_empty());
    // `//a/b` returns (a, b) pairs; every cell must resolve cleanly.
    for node in added {
        let name = snap.doc().labels().name(snap.doc().label(node));
        assert!(name == "a" || name == "b", "unexpected label {name}");
    }
    let _ = id;
}
