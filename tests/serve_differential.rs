//! Differential test for the query service: many threads hammering one
//! shared [`QueryService`] (plan cache on, contexts pooled) must produce
//! exactly the results of serial, uncached evaluation — concurrency,
//! caching, and arena reuse are performance features, never semantic
//! ones.

use twig2stack::{try_match_indexed, EvalContext, IndexedPlan, MatchOptions};
use twigbench::workload::{
    dblp, dblp_queries, treebank, treebank_queries, xmark, xmark_queries, Dataset, NamedQuery,
    Profile,
};
use twigserve::{QueryService, ServiceConfig};
use xmlindex::PruningPolicy;

const THREADS: usize = 8;
const ROUNDS: usize = 12;

fn figure16_workload() -> Vec<(Dataset, Vec<NamedQuery>)> {
    vec![
        (dblp(Profile::Quick), dblp_queries()),
        (xmark(Profile::Quick, 1), xmark_queries()),
        (treebank(Profile::Quick), treebank_queries()),
    ]
}

/// N threads through the cached, pooled service agree query-for-query
/// with serial uncached evaluation over all nine Figure 16 queries.
#[test]
fn hammered_service_matches_serial_uncached_evaluation() {
    for (ds, queries) in figure16_workload() {
        // Serial, uncached ground truth: one fresh analysis + evaluation
        // per query, no service in the loop.
        let uncached = QueryService::new(
            ds.doc.clone(),
            ds.index.clone(),
            ServiceConfig { plan_cache_capacity: 0, ..ServiceConfig::default() },
        );
        let expected: Vec<_> = queries
            .iter()
            .map(|nq| {
                let via_service = uncached.execute(nq.text).expect("serial uncached request");
                let via_dom = twig2stack::evaluate(&ds.doc, &nq.gtp);
                assert_eq!(via_service, via_dom, "[{}] service vs DOM oracle", nq.name);
                via_service
            })
            .collect();

        let svc = QueryService::new(
            ds.doc.clone(),
            ds.index.clone(),
            ServiceConfig {
                max_concurrency: THREADS,
                max_waiting: THREADS * ROUNDS * queries.len(),
                ..ServiceConfig::default()
            },
        );
        std::thread::scope(|scope| {
            for w in 0..THREADS {
                let svc = &svc;
                let queries = &queries;
                let expected = &expected;
                scope.spawn(move || {
                    for r in 0..ROUNDS {
                        let i = (w + r) % queries.len();
                        let got = svc
                            .execute(queries[i].text)
                            .unwrap_or_else(|e| panic!("[{}] {e}", queries[i].name));
                        assert_eq!(
                            &got, &expected[i],
                            "[{} worker {w} round {r}] concurrent cached result diverged",
                            queries[i].name
                        );
                    }
                });
            }
        });

        let stats = svc.stats();
        let total = (THREADS * ROUNDS) as u64;
        assert_eq!(stats.queries_admitted, total, "nothing shed under sized waiting room");
        assert_eq!(stats.queries_rejected, 0);
        // Every request either hit or missed; each distinct query misses
        // at least once, and at most once per thread (the cache takes no
        // per-key lock, so threads racing on a cold key may each run the
        // analysis — bounded duplication, never blocking).
        assert_eq!(stats.plan_cache_hits + stats.plan_cache_misses, total);
        let distinct = queries.len() as u64;
        assert!(
            stats.plan_cache_misses >= distinct
                && stats.plan_cache_misses <= distinct * THREADS as u64,
            "misses: {}",
            stats.plan_cache_misses
        );
        assert!(
            stats.plan_cache_hits >= total - distinct * THREADS as u64,
            "hits: {}",
            stats.plan_cache_hits
        );
    }
}

/// A pooled [`EvalContext`] reused across every Figure 16 query of a
/// dataset reports the same [`MatchStats`] as a fresh context per query
/// — arena reuse changes allocation traffic, not the work counted.
#[test]
fn pooled_context_counters_match_fresh_context_counters() {
    for (ds, queries) in figure16_workload() {
        let mut pooled = EvalContext::new();
        for nq in &queries {
            let plan = IndexedPlan::compute(
                &nq.gtp,
                &ds.index,
                ds.doc.labels(),
                PruningPolicy::Enabled,
            );
            let cancel = gtpquery::CancelToken::never();
            let (_, fresh_stats) = try_match_indexed(
                &ds.doc,
                &ds.index,
                &nq.gtp,
                MatchOptions::default(),
                &plan,
                None,
                &cancel,
            )
            .expect("in-memory evaluation");
            let (tm, pooled_stats) = try_match_indexed(
                &ds.doc,
                &ds.index,
                &nq.gtp,
                MatchOptions::default(),
                &plan,
                Some(&mut pooled),
                &cancel,
            )
            .expect("in-memory evaluation");
            assert_eq!(
                pooled_stats, fresh_stats,
                "[{}] pooled context must not change the counted work",
                nq.name
            );
            pooled.recycle(tm);
        }
    }
}
