//! Umbrella crate for the Twig²Stack reproduction workspace.
//!
//! Hosts the workspace-spanning integration tests (`tests/`) and runnable
//! examples (`examples/`). Re-exports the member libraries for convenience.

pub use gtpquery;
pub use twig2stack;
pub use twigbaselines;
pub use twigbench;
pub use xmldom;
pub use xmlgen;
pub use xmlindex;
