//! `twigql` — run twig / GTP queries over XML files from the command line.
//!
//! ```text
//! twigql [OPTIONS] <QUERY> [FILE]
//!
//! ARGS:
//!   <QUERY>   twig/GTP query, e.g. "//dblp/inproceedings[title]/author"
//!             (use '!' for non-return nodes, '@' for grouped returns,
//!              '/?'-steps for optional edges, `or` inside predicates,
//!              ='text'/~'text' value predicates)
//!   [FILE]    XML file; reads stdin when omitted
//!
//! OPTIONS:
//!   --engine <twig2stack|twigstack|tjfast|naive>   (default twig2stack)
//!   --count        print only the number of result tuples
//!   --stats        print matcher statistics to stderr
//!   --stream       streaming mode: never build a DOM (twig2stack only)
//!   --xquery       interpret QUERY as a FLWOR XQuery instead of a twig
//!   --ids          print node ids instead of tag/text
//! ```

use gtpquery::{parse_twig, translate, Cell, Gtp, ResultSet, Role};
use std::io::Read;
use std::process::ExitCode;
use twig2stack::{count_results, enumerate, match_document, MatchOptions};
use xmldom::Document;

struct Options {
    engine: String,
    count: bool,
    stats: bool,
    stream: bool,
    xquery: bool,
    ids: bool,
    query: String,
    file: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: twigql [--engine twig2stack|twigstack|tjfast|naive] \
         [--count] [--stats] [--stream] [--xquery] [--ids] <QUERY> [FILE]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        engine: "twig2stack".into(),
        count: false,
        stats: false,
        stream: false,
        xquery: false,
        ids: false,
        query: String::new(),
        file: None,
    };
    let mut positional = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--engine" => {
                opts.engine = args.next().ok_or_else(usage)?;
            }
            "--count" => opts.count = true,
            "--stats" => opts.stats = true,
            "--stream" => opts.stream = true,
            "--xquery" => opts.xquery = true,
            "--ids" => opts.ids = true,
            "-h" | "--help" => return Err(usage()),
            _ if a.starts_with("--") => return Err(usage()),
            _ => positional.push(a),
        }
    }
    match positional.len() {
        1 => opts.query = positional.remove(0),
        2 => {
            opts.query = positional.remove(0);
            opts.file = Some(positional.remove(0));
        }
        _ => return Err(usage()),
    }
    Ok(opts)
}

fn print_results(rs: &ResultSet, doc: &Document, gtp: &Gtp, ids: bool) {
    // Header: the output schema.
    let header: Vec<String> = rs
        .columns
        .iter()
        .map(|&q| {
            let name = gtp.test(q).to_string();
            if gtp.role(q) == Role::GroupReturn {
                format!("{name}[grouped]")
            } else {
                name
            }
        })
        .collect();
    println!("# {}", header.join(" | "));
    let render = |n: xmldom::NodeId| -> String {
        if ids {
            format!("{n}")
        } else {
            match doc.text(n) {
                Some(t) => format!("<{}>{}", doc.tag_name(n), t.trim()),
                None => format!("<{}>", doc.tag_name(n)),
            }
        }
    };
    for row in &rs.rows {
        let cells: Vec<String> = row
            .iter()
            .map(|c| match c {
                Cell::Node(n) => render(*n),
                Cell::Null => "-".into(),
                Cell::Group(g) => {
                    let items: Vec<String> = g.iter().map(|&n| render(n)).collect();
                    format!("[{}]", items.join(", "))
                }
            })
            .collect();
        println!("{}", cells.join(" | "));
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };

    let gtp = if opts.xquery {
        match translate(&opts.query) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("twigql: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        match parse_twig(&opts.query) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("twigql: {e}");
                return ExitCode::from(2);
            }
        }
    };

    let xml = match &opts.file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("twigql: {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut s = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut s) {
                eprintln!("twigql: stdin: {e}");
                return ExitCode::FAILURE;
            }
            s
        }
    };

    if opts.stream {
        if opts.engine != "twig2stack" {
            eprintln!("twigql: --stream requires --engine twig2stack");
            return ExitCode::from(2);
        }
        return match twig2stack::evaluate_streaming(&xml, &gtp, MatchOptions::default()) {
            Ok((rs, stats)) => {
                if opts.stats {
                    eprintln!("{stats:?}");
                }
                if opts.count {
                    println!("{}", rs.len());
                } else {
                    // Streaming never builds a DOM, so only ids exist.
                    println!("# {} columns (ids only in streaming mode)", rs.columns.len());
                    for row in &rs.rows {
                        let cells: Vec<String> =
                            row.iter().map(|c| format!("{c}")).collect();
                        println!("{}", cells.join(" | "));
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("twigql: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let doc = match xmldom::parse(&xml) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("twigql: {e}");
            return ExitCode::FAILURE;
        }
    };

    let rs = match opts.engine.as_str() {
        "twig2stack" => {
            let (tm, stats) = match_document(&doc, &gtp, MatchOptions::default());
            if opts.stats {
                eprintln!("{stats:?}");
            }
            if opts.count {
                println!("{}", count_results(&tm));
                return ExitCode::SUCCESS;
            }
            enumerate(&tm)
        }
        "naive" => twigbaselines::naive_evaluate(&doc, &gtp),
        "twigstack" => {
            let index = xmlindex::ElementIndex::build(&doc);
            let owned = twigbaselines::build_streams(&index, doc.labels(), &gtp);
            let streams: Vec<xmlindex::SliceStream<'_>> =
                owned.iter().map(|v| xmlindex::SliceStream::new(v)).collect();
            let mut stats = twigbaselines::TwigStackStats::default();
            let rs = twigbaselines::twig_stack(&gtp, streams, &mut stats);
            if opts.stats {
                eprintln!("{stats:?}");
            }
            rs
        }
        "tjfast" => {
            let dewey = xmlindex::DeweyIndex::build(&doc);
            let resolver = twigbaselines::DeweyResolver::build(&dewey, doc.labels());
            let mut stats = twigbaselines::TJFastStats::default();
            let rs = twigbaselines::tj_fast(&gtp, &dewey, doc.labels(), &resolver, &mut stats);
            if opts.stats {
                eprintln!("{stats:?}");
            }
            rs
        }
        other => {
            eprintln!("twigql: unknown engine '{other}'");
            return ExitCode::from(2);
        }
    };

    if opts.count {
        println!("{}", rs.len());
    } else {
        print_results(&rs, &doc, &gtp, opts.ids);
    }
    ExitCode::SUCCESS
}
