#!/usr/bin/env sh
# Docs-freshness guard for the architecture handbook.
#
# Two-way check between ARCHITECTURE.md and the source tree:
#   1. every `crates/...` (or scripts/.github) path the handbook cites
#      must exist on disk — a crate move or file rename that orphans a
#      reference fails CI instead of silently rotting the docs;
#   2. every workspace crate directory under crates/ must be mentioned
#      at least once — adding a crate without documenting it also fails.
#
# Run from anywhere; the script cd's to the repo root.
set -eu
cd "$(dirname "$0")/.."

doc=ARCHITECTURE.md
if [ ! -f "$doc" ]; then
    echo "check_docs: $doc is missing" >&2
    exit 1
fi

status=0

# 1. Cited paths must exist. Pull path-like tokens out of prose and
# backticks, stripping trailing sentence punctuation.
for p in $(grep -oE '(crates|scripts|\.github)/[A-Za-z0-9_./-]+' "$doc" \
        | sed 's/[.,;:)]*$//' | sort -u); do
    if [ ! -e "$p" ]; then
        echo "check_docs: $doc references a missing path: $p" >&2
        status=1
    fi
done

# 2. Every workspace crate must be documented.
for d in crates/*/; do
    c=${d%/}
    if ! grep -q "$c" "$doc"; then
        echo "check_docs: $doc does not mention workspace crate $c" >&2
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "check_docs: ARCHITECTURE.md is in sync with the source tree"
fi
exit "$status"
